(* Tests for the crash–recovery subsystem: machine-level crash–recover
   semantics, crash-aware adversaries, exhaustive crash-point enumeration in
   the model checker, and the Golab separation pair — rc-tas-naive is
   falsified under a 1-crash budget while rc-cas is certified under the same
   budget on every engine. *)

module M = Model.Machine.Make (Isets.Tasrw)

(* 1. Machine-level crash–recover semantics. *)
let test_machine_crash_semantics () =
  let n = 2 in
  let cfg =
    M.make ~record_trace:true ~n (fun pid ->
        let open Model.Proc.Syntax in
        let* () = Isets.Tasrw.write pid (Model.Value.Int (10 + pid)) in
        let* v = Isets.Tasrw.read pid in
        Model.Proc.return (Model.Value.to_int_exn v))
  in
  Alcotest.(check (list int)) "fresh: nobody crashable" [] (M.crashable cfg);
  let cfg1 = M.step cfg 0 in
  Alcotest.(check (list int)) "p0 crashable after a step" [ 0 ] (M.crashable cfg1);
  Alcotest.(check int) "epoch 0 before crash" 0 (M.epoch cfg1 0);
  let crashed = M.crash_recover cfg1 0 in
  Alcotest.(check int) "epoch bumped" 1 (M.epoch crashed 0);
  Alcotest.(check int) "crash counted" 1 (M.crashes crashed);
  Alcotest.(check int) "steps unchanged by crash" (M.steps cfg1) (M.steps crashed);
  Alcotest.(check (list int)) "victim not immediately re-crashable" []
    (M.crashable crashed);
  (* shared memory survives the crash *)
  Alcotest.(check bool) "memory survives" true
    (Model.Value.equal (M.cell crashed 0) (Model.Value.Int 10));
  (* fingerprints distinguish recovery epochs *)
  Alcotest.(check bool) "crash changes fingerprint" false
    (M.fingerprint cfg1 = M.fingerprint crashed);
  Alcotest.(check bool) "slow fingerprint agrees" false
    (M.slow_fingerprint cfg1 = M.slow_fingerprint crashed);
  (* the victim restarted from its root: it re-executes from the write *)
  let rerun = M.step (M.step crashed 0) 0 in
  Alcotest.(check (option int)) "recovered process re-decides" (Some 10)
    (M.decision rerun 0);
  (* a decided process is still crashable, and crashing it erases the
     decision — the re-decision scenario *)
  Alcotest.(check bool) "decided pid crashable" true (List.mem 0 (M.crashable rerun));
  let again = M.crash_recover rerun 0 in
  Alcotest.(check (option int)) "decision erased by crash" None (M.decision again 0);
  let crashes_on_trace =
    List.length
      (List.filter (function M.Crash _ -> true | M.Step _ -> false) (M.trace again))
  in
  Alcotest.(check int) "crash events traced" 2 crashes_on_trace

(* 2. Crash-aware adversaries: [reliable] is the identity embedding, and
   [crashing] is deterministic in its seed. *)
let test_sched_crashy () =
  let (module P : Consensus.Proto.S) = Recovery.cas_durable in
  let module PM = Model.Machine.Make (P.I) in
  let inputs = [| 3; 4 |] in
  let n = Array.length inputs in
  let mk () =
    PM.make ~record_trace:false ~n (fun pid -> P.proc ~n ~pid ~input:inputs.(pid))
  in
  let drive sched =
    let cfg, outcome = PM.run_crashy ~sched (mk ()) in
    (PM.decisions cfg, PM.crashes cfg, PM.fingerprint cfg, outcome)
  in
  let plain = Model.Sched.random_then_sequential ~seed:11 ~prefix:6 in
  let ds, crashes, fp, outcome = drive (Model.Sched.Crashy.reliable plain) in
  Alcotest.(check int) "reliable never crashes" 0 crashes;
  Alcotest.(check bool) "reliable decides" true (outcome = `All_decided);
  (* reliable equals the plain run, fingerprint and all *)
  let cfg, _ = PM.run ~sched:plain (mk ()) in
  Alcotest.(check bool) "reliable == plain (fingerprint)" true (PM.fingerprint cfg = fp);
  Alcotest.(check bool) "reliable == plain (decisions)" true (PM.decisions cfg = ds);
  (* crashing is deterministic in its seed *)
  let crashy () =
    Model.Sched.Crashy.crashing ~period:3 ~seed:5 ~budget:2
      (Model.Sched.random_then_sequential ~seed:11 ~prefix:12)
  in
  let r1 = drive (crashy ()) in
  let r2 = drive (crashy ()) in
  Alcotest.(check bool) "crashing replays deterministically" true (r1 = r2);
  (* rc-cas stays consistent under the random crash adversary *)
  let ds, _, _, outcome = r1 in
  Alcotest.(check bool) "rc-cas decided under crashes" true (outcome = `All_decided);
  match ds with
  | (_, first) :: rest ->
    List.iter (fun (_, v) -> Alcotest.(check int) "agreement under crashes" first v) rest
  | [] -> Alcotest.fail "no decisions"

(* 3. Satellite: [Sched.excluding] composed with [Sched.phased] — crash-stop
   mid-run — is the differential baseline for the crash–recover adversary: a
   victim that crash–recovers but is never scheduled again is, to the
   survivors, indistinguishable from one that crash-stopped (shared memory is
   untouched either way). *)
let test_crash_stop_differential () =
  let (module P : Consensus.Proto.S) = Recovery.cas_durable in
  let module PM = Model.Machine.Make (P.I) in
  let inputs = [| 7; 8 |] in
  let n = Array.length inputs in
  let mk () =
    PM.make ~record_trace:false ~n (fun pid -> P.proc ~n ~pid ~input:inputs.(pid))
  in
  let survivors_decision cfg =
    match PM.decision cfg 1 with
    | Some v -> v
    | None -> Alcotest.fail "p1 undecided"
  in
  List.iter
    (fun k ->
      (* crash-stop baseline: round-robin for k steps, then p0 is gone *)
      let stop_sched =
        Model.Sched.phased
          [ (k, Model.Sched.round_robin) ]
          (Model.Sched.excluding [ 0 ] Model.Sched.sequential)
      in
      let stop_cfg, _ = PM.run ~sched:stop_sched (mk ()) in
      (* the mirror under the crash–recover adversary: round_robin at n = 2
         is p0, p1, p0, p1, … while both run — neither decides within 6
         steps — then crash p0 (skipped at k = 0 where it is not yet
         crashable) and run the survivor out *)
      let mirror =
        List.init k (fun i -> Model.Sched.Crashy.Run (i mod 2))
        @ [ Model.Sched.Crashy.Crash 0 ]
        @ List.init 12 (fun _ -> Model.Sched.Crashy.Run 1)
      in
      let rec_cfg, _ =
        PM.run_crashy ~sched:(Model.Sched.Crashy.script mirror) (mk ())
      in
      Alcotest.(check int)
        (Printf.sprintf "crash-stop == crash-recover-and-park (k=%d)" k)
        (survivors_decision stop_cfg)
        (survivors_decision rec_cfg))
    [ 0; 1; 2; 3; 4; 5; 6 ]

(* 4. The Golab separation, engine by engine: exhaustive crash-point
   enumeration falsifies rc-tas-naive under a 1-crash budget with a
   replayable, shrunk witness, and certifies rc-cas under the same budget. *)
let engines = [ ("naive", `Naive); ("memo", `Memo); ("parallel", `Parallel 2) ]

let test_falsify_tas_naive () =
  List.iter
    (fun (ename, engine) ->
      match
        Explore.run ~engine ~probe:`Never ~crashes:1 Recovery.tas_naive
          ~inputs:[| 0; 1 |] ~depth:10
      with
      | Explore.Falsified f ->
        Alcotest.(check bool) (ename ^ ": agreement kind") true
          (f.witness.kind = `Agreement);
        Alcotest.(check bool) (ename ^ ": witness reproduced") true f.reproduced;
        Alcotest.(check bool) (ename ^ ": witness contains a crash") true
          (List.exists Explore.is_crash f.witness.schedule);
        Alcotest.(check bool)
          (ename ^ ": shrunk no longer than original")
          true
          (List.length f.witness.schedule <= List.length f.original.schedule);
        (* the witness replays to the same violation *)
        (match Explore.replay Recovery.tas_naive ~inputs:[| 0; 1 |] f.witness with
         | Ok { violation = Some (`Agreement, _); _ } -> ()
         | Ok { violation; _ } ->
           Alcotest.failf "%s: replay found %s" ename
             (match violation with
              | None -> "no violation"
              | Some (k, _) -> Explore.kind_name k)
         | Error e -> Alcotest.failf "%s: replay invalid: %s" ename e);
        (* rendered witnesses mark crash entries *)
        let rendered = Format.asprintf "%a" Explore.pp_witness f.witness in
        let crash_mark = "\xe2\x80\xa0p" in
        let rec mem i =
          i + String.length crash_mark <= String.length rendered
          && (String.sub rendered i (String.length crash_mark) = crash_mark
              || mem (i + 1))
        in
        Alcotest.(check bool) (ename ^ ": crash rendered") true (mem 0)
      | Explore.Completed _ -> Alcotest.failf "%s: rc-tas-naive not falsified" ename
      | Explore.Timed_out _ -> Alcotest.failf "%s: timed out" ename)
    engines

let test_certify_rc_cas () =
  List.iter
    (fun (ename, engine) ->
      match
        Explore.run ~engine ~probe:`Leaves ~crashes:1 Recovery.cas_durable
          ~inputs:[| 0; 1 |] ~depth:14
      with
      | Explore.Completed s ->
        Alcotest.(check bool) (ename ^ ": complete (not truncated)") false s.truncated
      | Explore.Falsified f ->
        Alcotest.failf "%s: rc-cas falsified: %s" ename (Explore.failure_message f)
      | Explore.Timed_out _ -> Alcotest.failf "%s: timed out" ename)
    engines;
  (* and crash-free both protocols are correct consensus *)
  List.iter
    (fun (name, proto, depth) ->
      match
        Explore.run ~engine:`Memo ~probe:`Everywhere proto ~inputs:[| 0; 1 |] ~depth
      with
      | Explore.Completed s ->
        Alcotest.(check bool) (name ^ " crash-free complete") false s.truncated
      | Explore.Falsified f ->
        Alcotest.failf "%s crash-free falsified: %s" name (Explore.failure_message f)
      | Explore.Timed_out _ -> Alcotest.failf "%s timed out" name)
    [
      ("rc-tas-naive", Recovery.tas_naive, 8); ("rc-cas", Recovery.cas_durable, 10);
    ]

(* 5. rc-cas at n = 3 under the memoized engine, and the recoverable
   observers standing in for the legacy checker. *)
let test_rc_cas_n3_and_observers () =
  (match
     Explore.run ~engine:`Memo ~probe:`Never ~crashes:1 Recovery.cas_durable
       ~inputs:[| 0; 1; 2 |] ~depth:17
   with
   | Explore.Completed s ->
     Alcotest.(check bool) "rc-cas n=3 complete" false s.truncated
   | Explore.Falsified f ->
     Alcotest.failf "rc-cas n=3 falsified: %s" (Explore.failure_message f)
   | Explore.Timed_out _ -> Alcotest.fail "rc-cas n=3 timed out");
  let observers = [ Observer.recoverable_agreement; Observer.recoverable_validity ] in
  (match
     Explore.run ~engine:`Memo ~probe:`Never ~crashes:1 ~observers Recovery.tas_naive
       ~inputs:[| 0; 1 |] ~depth:10
   with
   | Explore.Falsified f ->
     Alcotest.(check bool) "recoverable observer catches the flip" true
       (match f.witness.kind with
        | `Observer ("recoverable-agreement" | "recoverable-validity") -> true
        | _ -> false)
   | Explore.Completed _ -> Alcotest.fail "observers missed the tas-naive flip"
   | Explore.Timed_out _ -> Alcotest.fail "observer run timed out");
  match
    Explore.run ~engine:`Memo ~probe:`Never ~crashes:1 ~observers Recovery.cas_durable
      ~inputs:[| 0; 1 |] ~depth:14
  with
  | Explore.Completed _ -> ()
  | Explore.Falsified f ->
    Alcotest.failf "rc-cas under recoverable observers: %s" (Explore.failure_message f)
  | Explore.Timed_out _ -> Alcotest.fail "rc-cas observer run timed out"

(* 6. Crash-free identity: a zero budget leaves verdicts and every counter
   exactly as a run without the [crashes] argument; and the flat incremental
   fingerprint agrees with the from-scratch fold on crashy state spaces. *)
let test_crash_free_identity_and_fp_differential () =
  let stats_of = function
    | Explore.Completed (s : Explore.stats) ->
      (s.configs, s.probes, s.truncated, s.dedup_hits, s.sleep_pruned)
    | _ -> Alcotest.fail "expected completion"
  in
  List.iter
    (fun (name, proto, depth) ->
      let base =
        stats_of
          (Explore.run ~engine:`Memo ~probe:`Leaves proto ~inputs:[| 0; 1 |] ~depth)
      in
      let zero =
        stats_of
          (Explore.run ~engine:`Memo ~probe:`Leaves ~crashes:0 proto
             ~inputs:[| 0; 1 |] ~depth)
      in
      Alcotest.(check bool) (name ^ ": crashes:0 is the identity") true (base = zero))
    [
      ("cas", Consensus.Cas_protocol.protocol, 8);
      ("rw", Consensus.Rw_protocol.protocol, 8);
      ("rc-cas", Recovery.cas_durable, 10);
    ];
  (* flat vs fold fingerprints partition crashy state spaces identically *)
  List.iter
    (fun (name, crashes, depth) ->
      let configs mode =
        match
          Explore.run ~engine:`Memo ~probe:`Never ~crashes ~fingerprint_mode:mode
            Recovery.cas_durable ~inputs:[| 0; 1 |] ~depth
        with
        | Explore.Completed (s : Explore.stats) -> s.configs
        | Explore.Falsified f -> -1 - List.length f.original.schedule
        | Explore.Timed_out _ -> Alcotest.fail "timed out"
      in
      Alcotest.(check int)
        (name ^ ": flat == fold under crashes")
        (configs `Fold) (configs `Flat))
    [ ("rc-cas-1crash", 1, 12); ("rc-cas-2crash", 2, 10) ]

(* 7. The registry rows: rc- rows are opt-in and findable. *)
let test_registry_rows () =
  let default_ids = List.map (fun r -> r.Hierarchy.id) (Hierarchy.rows ()) in
  Alcotest.(check bool) "rc rows absent by default" false
    (List.exists (fun id -> id = "rc-cas" || id = "rc-tas-naive") default_ids);
  let rec_ids =
    List.map (fun r -> r.Hierarchy.id) (Hierarchy.rows ~recovery:true ())
  in
  Alcotest.(check bool) "rc-cas present with ~recovery" true (List.mem "rc-cas" rec_ids);
  Alcotest.(check bool) "rc-tas-naive present with ~recovery" true
    (List.mem "rc-tas-naive" rec_ids);
  (match Hierarchy.find "rc-cas" with
   | Some row ->
     Alcotest.(check string) "find rc-cas" "rc-cas" row.Hierarchy.id;
     (match Hierarchy.measure row ~n:2 with
      | Ok m ->
        Alcotest.(check bool) "rc-cas measurable" true (m.Hierarchy.measured >= 1)
      | Error e -> Alcotest.failf "rc-cas measure failed: %s" e)
   | None -> Alcotest.fail "find rc-cas");
  match Hierarchy.find "rc-tas-naive" with
  | Some _ -> ()
  | None -> Alcotest.fail "find rc-tas-naive"

let () =
  Alcotest.run "recovery"
    [
      ( "machine",
        [
          Alcotest.test_case "crash-recover semantics" `Quick
            test_machine_crash_semantics;
        ] );
      ( "sched",
        [
          Alcotest.test_case "crashy adversaries" `Quick test_sched_crashy;
          Alcotest.test_case "crash-stop differential" `Quick
            test_crash_stop_differential;
        ] );
      ( "explore",
        [
          Alcotest.test_case "falsify rc-tas-naive" `Quick test_falsify_tas_naive;
          Alcotest.test_case "certify rc-cas" `Quick test_certify_rc_cas;
          Alcotest.test_case "n=3 and observers" `Quick test_rc_cas_n3_and_observers;
          Alcotest.test_case "crash-free identity" `Quick
            test_crash_free_identity_and_fp_differential;
        ] );
      ( "registry", [ Alcotest.test_case "rc rows" `Quick test_registry_rows ] );
    ]
