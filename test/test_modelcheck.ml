(* Tests for the bounded model checker: exhaustive verification of the
   cheap protocols, bivalence detection (Lemma 6.4), and the checker's
   ability to catch deliberately broken protocols. *)

let ok_stats = function
  | Explore.Completed (s : Modelcheck.stats) -> s
  | Explore.Falsified f ->
    Alcotest.fail ("unexpected violation: " ^ Modelcheck.failure_message f)
  | Explore.Timed_out _ -> Alcotest.fail "unexpected timeout (no deadline given)"

(* 1. Exhaustive verification of one-shot protocols (complete tree). *)
let test_exhaustive_one_shot () =
  let s =
    ok_stats
      (Modelcheck.explore ~probe:`Everywhere Consensus.Cas_protocol.protocol
         ~inputs:[| 0; 1 |] ~depth:6)
  in
  Alcotest.(check bool) "cas n=2 complete" false s.truncated;
  let s =
    ok_stats
      (Modelcheck.explore ~probe:`Everywhere Consensus.Cas_protocol.protocol
         ~inputs:[| 0; 1; 2 |] ~depth:8)
  in
  Alcotest.(check bool) "cas n=3 complete" false s.truncated;
  let s =
    ok_stats
      (Modelcheck.explore ~probe:`Everywhere Consensus.Intro_protocols.faa2_tas
         ~inputs:[| 0; 1 |] ~depth:6)
  in
  Alcotest.(check bool) "faa2+tas n=2 complete" false s.truncated;
  let s =
    ok_stats
      (Modelcheck.explore ~probe:`Everywhere Consensus.Intro_protocols.faa2_tas
         ~inputs:[| 1; 0; 1; 0 |] ~depth:10)
  in
  Alcotest.(check bool) "faa2+tas n=4 complete" false s.truncated;
  let s =
    ok_stats
      (Modelcheck.explore ~probe:`Everywhere Consensus.Intro_protocols.decmul
         ~inputs:[| 0; 1; 1 |] ~depth:12)
  in
  Alcotest.(check bool) "dec+mul n=3 complete" false s.truncated;
  (* the 2-process multiple-assignment protocol, for all four input pairs *)
  List.iter
    (fun inputs ->
      let s =
        ok_stats
          (Modelcheck.explore ~probe:`Everywhere Consensus.Assignment_protocol.two_process
             ~inputs ~depth:8)
      in
      Alcotest.(check bool) "2-assignment complete" false s.truncated)
    [ [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] ]

(* 2. Deep bounded exploration of the loop-based protocols. *)
let test_bounded_loop_protocols () =
  let protos =
    [
      ("maxreg", Consensus.Maxreg_protocol.protocol, 14);
      ("arith-mul", Consensus.Arith_protocols.mul, 14);
      ("arith-add", Consensus.Arith_protocols.add, 14);
      ("swap", Consensus.Swap_protocol.protocol, 14);
      ("rw", Consensus.Rw_protocol.protocol, 12);
      ("buffers-2", Consensus.Buffers_protocol.protocol ~capacity:2, 12);
      ( "increment-binary",
        Consensus.Increment_protocol.binary ~flavour:Isets.Incr.Increment_only,
        13 );
      ("tug-of-war-binary", Consensus.Tugofwar_protocol.binary, 14);
      ( "tracks-tas",
        Consensus.Tracks_protocol.protocol ~flavour:Isets.Bits.Tas_only,
        12 );
    ]
  in
  List.iter
    (fun (name, proto, depth) ->
      let s = ok_stats (Modelcheck.explore ~probe:`Leaves proto ~inputs:[| 0; 1 |] ~depth) in
      Alcotest.(check bool) (name ^ ": explored some tree") true (s.configs > 100))
    protos

(* 3. Three processes, shallower. *)
let test_three_process_exploration () =
  List.iter
    (fun (name, proto) ->
      let s =
        ok_stats (Modelcheck.explore ~probe:`Leaves proto ~inputs:[| 2; 0; 1 |] ~depth:8)
      in
      Alcotest.(check bool) (name ^ " 3 procs") true (s.configs > 0))
    [
      ("maxreg", Consensus.Maxreg_protocol.protocol);
      ("swap", Consensus.Swap_protocol.protocol);
      ("arith-mul", Consensus.Arith_protocols.mul);
      ("buffers-3", Consensus.Buffers_protocol.protocol ~capacity:3);
    ]

(* 4. Lemma 6.4: from the initial configuration with mixed inputs, both
   values are decidable — bivalence. *)
let test_initial_bivalence () =
  List.iter
    (fun (name, proto) ->
      match Modelcheck.decidable_values proto ~inputs:[| 0; 1 |] ~depth:4 with
      | Ok vs ->
        Alcotest.(check (list int)) (name ^ ": initially bivalent") [ 0; 1 ] vs
      | Error e -> Alcotest.fail (name ^ ": " ^ e))
    [
      ("maxreg", Consensus.Maxreg_protocol.protocol);
      ("swap", Consensus.Swap_protocol.protocol);
      ("cas", Consensus.Cas_protocol.protocol);
      ("arith-add", Consensus.Arith_protocols.add);
      ("increment-binary", Consensus.Increment_protocol.binary ~flavour:Isets.Incr.Increment_only);
    ]

(* 5. With unanimous inputs only that value is decidable (validity). *)
let test_unanimous_univalence () =
  List.iter
    (fun v ->
      match
        Modelcheck.decidable_values Consensus.Maxreg_protocol.protocol
          ~inputs:[| v; v |] ~depth:5
      with
      | Ok vs -> Alcotest.(check (list int)) "only the unanimous value" [ v ] vs
      | Error e -> Alcotest.fail e)
    [ 0; 1 ]

(* 6. Broken protocols are caught. *)
let broken_disagree : Consensus.Proto.t =
  (module struct
    module I = Isets.Rw

    let name = "broken-disagree"
    let locations ~n:_ = Some 0
    let proc ~n:_ ~pid ~input:_ = Model.Proc.return pid
  end)

let broken_invalid : Consensus.Proto.t =
  (module struct
    module I = Isets.Rw

    let name = "broken-invalid"
    let locations ~n:_ = Some 0
    let proc ~n:_ ~pid:_ ~input:_ = Model.Proc.return 7
  end)

let broken_nonterminating : Consensus.Proto.t =
  (module struct
    module I = Isets.Rw

    let name = "broken-spin"
    let locations ~n:_ = Some 1

    (* Waits forever for another process's write: not obstruction-free. *)
    let proc ~n:_ ~pid ~input =
      let open Model.Proc.Syntax in
      if pid = 0 then
        Model.Proc.rec_loop () (fun () ->
            let* v = Isets.Rw.read 0 in
            match v with
            | Model.Value.Int w -> Model.Proc.return (Either.Right w)
            | _ -> Model.Proc.return (Either.Left ()))
      else
        let* () = Isets.Rw.write 0 (Model.Value.Int input) in
        Model.Proc.return input
  end)

let expect_violation name outcome =
  match outcome with
  | Explore.Falsified _ -> ()
  | Explore.Completed (_ : Modelcheck.stats) | Explore.Timed_out _ ->
    Alcotest.fail (name ^ ": violation not detected")

let test_catches_broken () =
  expect_violation "disagree"
    (Modelcheck.explore broken_disagree ~inputs:[| 0; 1 |] ~depth:3);
  expect_violation "invalid"
    (Modelcheck.explore broken_invalid ~inputs:[| 0; 1 |] ~depth:3);
  expect_violation "non-terminating (obstruction-freedom probe)"
    (Modelcheck.explore ~probe:`Everywhere ~solo_fuel:1_000 broken_nonterminating
       ~inputs:[| 0; 1 |] ~depth:2)

(* 7. An agreement bug only reachable through a specific interleaving: the
   naive single-max-register victim.  The checker must find the schedule. *)
let test_finds_interleaving_bug () =
  let victim : Consensus.Proto.t =
    let (module V) = Lowerbound.Victims.naive_maxreg in
    (module V)
  in
  expect_violation "naive maxreg victim"
    (Modelcheck.explore ~probe:`Everywhere victim ~inputs:[| 0; 1 |] ~depth:6)

(* 8. Stats are sane on a complete exploration: cas n=2 has a known tree. *)
let test_stats_shape () =
  let s =
    ok_stats
      (Modelcheck.explore ~probe:`Never Consensus.Cas_protocol.protocol
         ~inputs:[| 0; 1 |] ~depth:10)
  in
  (* Each process takes exactly one step: configs = 1 root + 2 + 2 = 5. *)
  Alcotest.(check int) "cas n=2 tree size" 5 s.configs;
  Alcotest.(check int) "no probes when `Never" 0 s.probes;
  Alcotest.(check bool) "complete" false s.truncated

(* 9. Differential: the three engines decide the same verdict.  Stats may
   differ by design (memo visits fewer configurations), so we compare the
   outcome class: Ok, or the violation kind (message prefix up to ':'). *)
let engines = [ ("naive", `Naive); ("memo", `Memo); ("parallel-2", `Parallel 2) ]

let outcome_class = function
  | Explore.Completed (_ : Modelcheck.stats) -> "ok"
  | Explore.Falsified (f : Explore.failure) ->
    "violation:" ^ Explore.kind_name f.Explore.witness.Explore.kind
  | Explore.Timed_out _ -> "timeout"

let check_engines_agree ?solo_fuel name proto inputs depth =
  let verdict engine =
    outcome_class
      (Modelcheck.explore ~probe:`Everywhere ?solo_fuel ~engine proto ~inputs ~depth)
  in
  let reference = verdict `Naive in
  List.iter
    (fun (ename, engine) ->
      Alcotest.(check string) (Printf.sprintf "%s: %s vs naive" name ename) reference
        (verdict engine))
    engines;
  reference

let test_engines_agree_correct () =
  List.iter
    (fun (name, proto, inputs, depth) ->
      let verdict = check_engines_agree name proto inputs depth in
      Alcotest.(check string) (name ^ ": verdict is ok") "ok" verdict)
    [
      ("cas n=2", Consensus.Cas_protocol.protocol, [| 0; 1 |], 6);
      ("cas n=3", Consensus.Cas_protocol.protocol, [| 0; 1; 2 |], 8);
      ("rw", Consensus.Rw_protocol.protocol, [| 0; 1 |], 7);
      ("maxreg", Consensus.Maxreg_protocol.protocol, [| 0; 1 |], 7);
      ("swap", Consensus.Swap_protocol.protocol, [| 0; 1 |], 7);
      ("arith-add", Consensus.Arith_protocols.add, [| 0; 1 |], 7);
      ("faa2+tas", Consensus.Intro_protocols.faa2_tas, [| 0; 1 |], 6);
    ]

let test_engines_agree_broken () =
  let maxreg_victim : Consensus.Proto.t =
    let (module V) = Lowerbound.Victims.naive_maxreg in
    (module V)
  in
  let fai_victim : Consensus.Proto.t =
    let (module V) = Lowerbound.Victims.naive_fai in
    (module V)
  in
  List.iter
    (fun (name, proto, inputs, depth, solo_fuel) ->
      let verdict = check_engines_agree ~solo_fuel name proto inputs depth in
      Alcotest.(check bool)
        (name ^ ": all engines report a violation")
        true
        (String.length verdict >= 9 && String.sub verdict 0 9 = "violation"))
    [
      ("disagree", broken_disagree, [| 0; 1 |], 3, 100_000);
      ("invalid", broken_invalid, [| 0; 1 |], 3, 100_000);
      ("spin", broken_nonterminating, [| 0; 1 |], 2, 1_000);
      ("naive-maxreg victim", maxreg_victim, [| 0; 1 |], 6, 100_000);
      ("naive-fai victim", fai_victim, [| 0; 1 |], 8, 100_000);
    ]

(* 10. The transposition table earns its keep: on read/write consensus with
   three processes, commuting steps collapse and memo visits strictly fewer
   configurations than naive while actually hitting the table. *)
let test_memo_dedups () =
  let inputs = [| 0; 1; 2 |] and depth = 8 in
  let run engine =
    match Explore.run ~probe:`Leaves ~engine Consensus.Rw_protocol.protocol ~inputs ~depth with
    | Explore.Completed s -> s
    | Explore.Falsified f ->
      Alcotest.fail ("unexpected violation: " ^ Explore.failure_message f)
    | Explore.Timed_out _ -> Alcotest.fail "unexpected timeout (no deadline given)"
  in
  let naive = run `Naive and memo = run `Memo in
  Alcotest.(check bool) "memo hits the table" true (memo.Explore.dedup_hits > 0);
  Alcotest.(check bool) "memo visits fewer configs" true
    (memo.Explore.configs < naive.Explore.configs);
  Alcotest.(check int) "naive never hits the table" 0 naive.Explore.dedup_hits

(* 11. Witnesses: every engine's reported counterexample replays to the
   same violation kind, and shrinking only ever removes steps. *)
let test_witness_replay_all_engines () =
  let maxreg_victim : Consensus.Proto.t =
    let (module V) = Lowerbound.Victims.naive_maxreg in
    (module V)
  in
  let cases =
    [
      ("disagree", broken_disagree, [| 0; 1 |], 3, 100_000);
      ("invalid", broken_invalid, [| 0; 1 |], 3, 100_000);
      ("spin", broken_nonterminating, [| 0; 1 |], 2, 1_000);
      ("naive-maxreg", maxreg_victim, [| 0; 1 |], 6, 100_000);
    ]
  in
  List.iter
    (fun (name, proto, inputs, depth, solo_fuel) ->
      List.iter
        (fun (ename, engine) ->
          let label what = Printf.sprintf "%s/%s: %s" name ename what in
          match Explore.run ~probe:`Everywhere ~solo_fuel ~engine proto ~inputs ~depth with
          | Explore.Completed _ | Explore.Timed_out _ ->
            Alcotest.fail (label "violation not detected")
          | Explore.Falsified f ->
            let w = f.Explore.witness and o = f.Explore.original in
            Alcotest.(check bool) (label "original replays") true f.Explore.reproduced;
            Alcotest.(check bool)
              (label "shrunk schedule no longer than found")
              true
              (List.length w.Explore.schedule <= List.length o.Explore.schedule);
            Alcotest.(check string)
              (label "shrinking preserves the kind")
              (Explore.kind_name o.Explore.kind)
              (Explore.kind_name w.Explore.kind);
            Alcotest.(check bool) (label "trace regenerated") true (f.Explore.trace <> None);
            (match Explore.replay ~solo_fuel proto ~inputs w with
             | Error e -> Alcotest.fail (label ("replay rejected the witness: " ^ e))
             | Ok r ->
               (match r.Explore.violation with
                | None -> Alcotest.fail (label "shrunk witness replayed clean")
                | Some (k, _) ->
                  Alcotest.(check string)
                    (label "replay raises the same kind")
                    (Explore.kind_name w.Explore.kind)
                    (Explore.kind_name k))))
        engines)
    cases

(* 12. Regression: the probe's finish loop used to retry every still-running
   process forever; with a process that only its peer can release, probing
   any configuration livelocked.  It must now give up after one bounded
   solo run per process and report a termination violation. *)
let broken_peer_spin : Consensus.Proto.t =
  (module struct
    module I = Isets.Rw

    let name = "broken-peer-spin"
    let locations ~n:_ = Some 2

    (* p0 decides immediately (so the obstruction-freedom probes pass);
       everyone else spins on a location nobody ever writes. *)
    let proc ~n:_ ~pid ~input =
      let open Model.Proc.Syntax in
      if pid = 0 then
        let* () = Isets.Rw.write 0 (Model.Value.Int input) in
        Model.Proc.return input
      else
        Model.Proc.rec_loop () (fun () ->
            let* v = Isets.Rw.read 1 in
            match v with
            | Model.Value.Int w -> Model.Proc.return (Either.Right w)
            | _ -> Model.Proc.return (Either.Left ()))
  end)

let test_probe_finish_bounded () =
  List.iter
    (fun (ename, engine) ->
      match
        Explore.run ~probe:`Everywhere ~solo_fuel:500 ~engine broken_peer_spin
          ~inputs:[| 0; 1 |] ~depth:2
      with
      | Explore.Completed _ | Explore.Timed_out _ ->
        Alcotest.fail (ename ^ ": violation not detected")
      | Explore.Falsified f ->
        Alcotest.(check string)
          (ename ^ ": reported as non-termination")
          "termination"
          (Explore.kind_name f.Explore.witness.Explore.kind))
    engines

(* 12b. Regression: replay's contract says [Error _] for a witness naming a
   process that cannot be probed, but probing an already-decided (or
   out-of-range) pid used to be silently absorbed, replaying "clean" instead
   of rejecting the witness. *)
let test_replay_rejects_unprobeable () =
  (* broken_nonterminating's p1 decides on its first step, so after
     schedule [1] probing p1 contradicts the contract *)
  let witness probe schedule =
    { Explore.kind = `Obstruction_freedom; message = "x"; schedule; probe }
  in
  let expect_error name w =
    List.iter
      (fun observers ->
        let tag = if observers = [] then "legacy" else "observed" in
        match Explore.replay ~observers broken_nonterminating ~inputs:[| 0; 1 |] w with
        | Error _ -> ()
        | Ok _ ->
          Alcotest.fail
            (Printf.sprintf "%s (%s path): unprobeable witness accepted" name tag))
      [ []; Observer.defaults ]
  in
  expect_error "decided pid" (witness (Some 1) [ 1 ]);
  expect_error "out of range" (witness (Some 5) []);
  expect_error "negative" (witness (Some (-1)) []);
  (* sanity: the same schedule without the bogus probe still replays *)
  match Explore.replay broken_nonterminating ~inputs:[| 0; 1 |] (witness None [ 1 ]) with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("probe-free witness rejected: " ^ e)

(* 13. Differential: the memoized decidable-values walk equals the original
   naive one — same value sets, same verdict on broken protocols. *)
let test_decidable_memo_differential () =
  let cases =
    [
      ("maxreg 0/1", Consensus.Maxreg_protocol.protocol, [| 0; 1 |], 4);
      ("maxreg unanimous", Consensus.Maxreg_protocol.protocol, [| 1; 1 |], 5);
      ("swap", Consensus.Swap_protocol.protocol, [| 0; 1 |], 4);
      ("cas", Consensus.Cas_protocol.protocol, [| 0; 1 |], 4);
      ("rw n=3", Consensus.Rw_protocol.protocol, [| 0; 1; 2 |], 4);
    ]
  in
  List.iter
    (fun (name, proto, inputs, depth) ->
      let memo = Modelcheck.decidable_values proto ~inputs ~depth in
      let naive = Modelcheck.decidable_values_naive proto ~inputs ~depth in
      match (memo, naive) with
      | Ok m, Ok n -> Alcotest.(check (list int)) (name ^ ": same value set") n m
      | Error e, _ -> Alcotest.fail (name ^ ": memoized walk failed: " ^ e)
      | _, Error e -> Alcotest.fail (name ^ ": naive walk failed: " ^ e))
    cases;
  let memo =
    Modelcheck.decidable_values ~solo_fuel:200 broken_nonterminating ~inputs:[| 0; 1 |]
      ~depth:2
  in
  let naive =
    Modelcheck.decidable_values_naive ~solo_fuel:200 broken_nonterminating
      ~inputs:[| 0; 1 |] ~depth:2
  in
  (match (memo, naive) with
   | Error _, Error _ -> ()
   | _ -> Alcotest.fail "spin: both walks must report the solo failure")

(* 14. Iterative deepening completes on a finite tree and reports it. *)
let test_deepen_completes () =
  match
    Explore.deepen ~budget:10.0 Consensus.Cas_protocol.protocol ~inputs:[| 0; 1 |]
      ~max_depth:10
  with
  | Explore.Completed r ->
    Alcotest.(check bool) "complete" true r.Explore.complete;
    (* each process takes exactly one step, so depth 2 finishes the tree *)
    Alcotest.(check int) "depth reached" 2 r.Explore.depth_reached
  | Explore.Falsified f -> Alcotest.fail (Explore.failure_message f)
  | Explore.Timed_out _ -> Alcotest.fail "deepen timed out within a 10 s budget"

(* 15. Reduction soundness, differentially.  The commutativity half (sleep
   sets) preserves the verdict for EVERY protocol; the symmetry half only
   for pid-symmetric ones, so it is exercised on those alone.  Every
   (protocol, inputs, reduction, engine) cell must match the plain Naive
   verdict — same outcome class AND same decidable-value set. *)
let reductions =
  [
    ("none", Explore.no_reduction);
    ("commute", { Explore.commute = true; symmetric = false });
    ("symmetric", { Explore.commute = false; symmetric = true });
    ("full", Explore.full_reduction);
  ]

let symmetric_cases =
  [
    ("cas unanimous", Consensus.Cas_protocol.protocol, [| 1; 1; 1 |], 6);
    ("cas mixed", Consensus.Cas_protocol.protocol, [| 0; 1; 1 |], 6);
    ("maxreg unanimous", Consensus.Maxreg_protocol.protocol, [| 1; 1; 1 |], 6);
    ("maxreg mixed", Consensus.Maxreg_protocol.protocol, [| 0; 1; 1 |], 6);
    ("arith-add mixed", Consensus.Arith_protocols.add, [| 0; 1; 1 |], 6);
    ("tug-of-war mixed", Consensus.Tugofwar_protocol.binary, [| 0; 1; 1 |], 6);
  ]

(* commute is sound for pid-dependent protocols too — including broken ones,
   where the violation must survive the pruning *)
let commute_only_cases =
  [
    ("rw", Consensus.Rw_protocol.protocol, [| 0; 1 |], 7);
    ("swap", Consensus.Swap_protocol.protocol, [| 0; 1 |], 7);
    ("disagree", broken_disagree, [| 0; 1 |], 3);
    ("invalid", broken_invalid, [| 0; 1 |], 3);
  ]

let test_reduce_differential () =
  let verdict ?(reduce = Explore.no_reduction) engine proto inputs depth =
    outcome_class
      (Modelcheck.explore ~probe:`Everywhere ~engine ~reduce proto ~inputs ~depth)
  in
  List.iter
    (fun (name, proto, inputs, depth) ->
      let reference = verdict `Naive proto inputs depth in
      List.iter
        (fun (rname, reduce) ->
          List.iter
            (fun (ename, engine) ->
              Alcotest.(check string)
                (Printf.sprintf "%s: %s/%s vs plain naive" name ename rname)
                reference
                (verdict ~reduce engine proto inputs depth))
            engines)
        reductions)
    symmetric_cases;
  List.iter
    (fun (name, proto, inputs, depth) ->
      let reference = verdict `Naive proto inputs depth in
      let reduce = { Explore.commute = true; symmetric = false } in
      List.iter
        (fun (ename, engine) ->
          Alcotest.(check string)
            (Printf.sprintf "%s: %s/commute vs plain naive" name ename)
            reference
            (verdict ~reduce engine proto inputs depth))
        engines)
    commute_only_cases

(* 16. Reduction preserves the decidable-value sets (bivalence analysis),
   not just the ok/violation verdict. *)
let test_reduce_decidable_values () =
  let cases =
    [
      ("maxreg unanimous", Consensus.Maxreg_protocol.protocol, [| 1; 1 |], 5);
      ("maxreg mixed", Consensus.Maxreg_protocol.protocol, [| 0; 1 |], 4);
      ("cas mixed", Consensus.Cas_protocol.protocol, [| 0; 1 |], 4);
      ("arith-add n=3", Consensus.Arith_protocols.add, [| 1; 1; 1 |], 5);
    ]
  in
  List.iter
    (fun (name, proto, inputs, depth) ->
      let reference = Modelcheck.decidable_values_naive proto ~inputs ~depth in
      List.iter
        (fun (rname, reduce) ->
          match (Modelcheck.decidable_values ~reduce proto ~inputs ~depth, reference) with
          | Ok got, Ok want ->
            Alcotest.(check (list int))
              (Printf.sprintf "%s: %s value set" name rname)
              want got
          | Error e, _ ->
            Alcotest.fail (Printf.sprintf "%s: %s walk failed: %s" name rname e)
          | _, Error e -> Alcotest.fail (name ^ ": naive walk failed: " ^ e))
        reductions)
    cases

(* 17. The reduction earns its keep: under unanimous inputs symmetry
   collapses the transposition table by >= 3x on arith-add, and sleep sets
   actually prune transitions (the counter moves) while staying silent when
   the reduction is off. *)
let test_reduce_effectiveness () =
  let proto = Consensus.Arith_protocols.add and inputs = [| 1; 1; 1 |] and depth = 8 in
  let run reduce =
    match Explore.run ~probe:`Leaves ~engine:`Memo ~reduce proto ~inputs ~depth with
    | Explore.Completed s -> s
    | Explore.Falsified f ->
      Alcotest.fail ("unexpected violation: " ^ Explore.failure_message f)
    | Explore.Timed_out _ -> Alcotest.fail "unexpected timeout (no deadline given)"
  in
  let plain = run Explore.no_reduction in
  let full = run Explore.full_reduction in
  let commute = run { Explore.commute = true; symmetric = false } in
  Alcotest.(check bool)
    "symmetry collapses the table >= 3x" true
    (plain.Explore.configs >= 3 * full.Explore.configs);
  Alcotest.(check bool)
    "sleep sets prune transitions" true
    (commute.Explore.sleep_pruned > 0);
  Alcotest.(check int) "no sleep pruning when off" 0 plain.Explore.sleep_pruned

(* 18. Failing runs report their exploration effort and keep engine time
   separate from witness diagnosis time. *)
let test_failure_reports_stats () =
  List.iter
    (fun (ename, engine) ->
      match
        Explore.run ~probe:`Everywhere ~solo_fuel:1_000 ~engine broken_disagree
          ~inputs:[| 0; 1 |] ~depth:3
      with
      | Explore.Completed _ | Explore.Timed_out _ ->
        Alcotest.fail (ename ^ ": violation not detected")
      | Explore.Falsified f ->
        Alcotest.(check bool)
          (ename ^ ": engine stats attached") true
          (f.Explore.stats.Explore.configs > 0);
        Alcotest.(check bool)
          (ename ^ ": engine time non-negative") true
          (f.Explore.stats.Explore.elapsed >= 0.);
        Alcotest.(check bool)
          (ename ^ ": diagnosis time non-negative") true
          (f.Explore.diagnosis_elapsed >= 0.))
    engines

(* 19. Deadlines: an already-expired budget times out every engine
   immediately — with the partial counters attached — while a generous one
   leaves verdicts unchanged, including on broken protocols. *)
let test_deadline_times_out () =
  List.iter
    (fun (ename, engine) ->
      match
        Explore.run ~engine ~deadline:(-1.0) Consensus.Maxreg_protocol.protocol
          ~inputs:[| 0; 1 |] ~depth:10
      with
      | Explore.Timed_out t ->
        Alcotest.(check (float 0.0)) (ename ^ ": deadline echoed") (-1.0) t.Explore.deadline;
        Alcotest.(check bool)
          (ename ^ ": partial stats are partial")
          true
          (t.Explore.partial.Explore.configs <= 1)
      | Explore.Completed _ -> Alcotest.fail (ename ^ ": expired deadline completed")
      | Explore.Falsified f -> Alcotest.fail (ename ^ ": " ^ Explore.failure_message f))
    engines;
  (match
     Explore.decidable_values ~deadline:(-1.0) Consensus.Maxreg_protocol.protocol
       ~inputs:[| 0; 1 |] ~depth:4
   with
   | Explore.Timed_out _ -> ()
   | _ -> Alcotest.fail "decidable_values ignored the expired deadline");
  match
    Modelcheck.decidable_values ~deadline:(-1.0) Consensus.Maxreg_protocol.protocol
      ~inputs:[| 0; 1 |] ~depth:4
  with
  | Error e ->
    Alcotest.(check bool) "wrapper flattens the timeout to a message" true
      (String.length e >= 9 && String.sub e 0 9 = "timed out")
  | Ok _ -> Alcotest.fail "Modelcheck.decidable_values ignored the expired deadline"

let test_deadline_generous_is_invisible () =
  List.iter
    (fun (ename, engine) ->
      let s =
        ok_stats
          (Modelcheck.explore ~probe:`Everywhere ~engine ~deadline:3600.0
             Consensus.Cas_protocol.protocol ~inputs:[| 0; 1 |] ~depth:6)
      in
      Alcotest.(check bool) (ename ^ ": complete under deadline") false s.truncated)
    engines;
  expect_violation "disagree under deadline"
    (Modelcheck.explore ~deadline:3600.0 broken_disagree ~inputs:[| 0; 1 |] ~depth:3)

let () =
  Alcotest.run "modelcheck"
    [
      ( "exploration",
        [
          Alcotest.test_case "exhaustive one-shot" `Quick test_exhaustive_one_shot;
          Alcotest.test_case "bounded loop protocols" `Quick test_bounded_loop_protocols;
          Alcotest.test_case "three processes" `Quick test_three_process_exploration;
          Alcotest.test_case "stats shape" `Quick test_stats_shape;
        ] );
      ( "bivalence",
        [
          Alcotest.test_case "initial bivalence (Lemma 6.4)" `Quick test_initial_bivalence;
          Alcotest.test_case "unanimous univalence" `Quick test_unanimous_univalence;
        ] );
      ( "violations",
        [
          Alcotest.test_case "catches broken protocols" `Quick test_catches_broken;
          Alcotest.test_case "finds interleaving bug" `Quick test_finds_interleaving_bug;
        ] );
      ( "engines",
        [
          Alcotest.test_case "engines agree (correct protocols)" `Quick
            test_engines_agree_correct;
          Alcotest.test_case "engines agree (broken protocols)" `Quick
            test_engines_agree_broken;
          Alcotest.test_case "memo dedups" `Quick test_memo_dedups;
          Alcotest.test_case "deepen completes" `Quick test_deepen_completes;
        ] );
      ( "witnesses",
        [
          Alcotest.test_case "witness replays under every engine" `Quick
            test_witness_replay_all_engines;
          Alcotest.test_case "probe finish loop is bounded" `Quick
            test_probe_finish_bounded;
          Alcotest.test_case "replay rejects unprobeable probe pids" `Quick
            test_replay_rejects_unprobeable;
          Alcotest.test_case "decidable_values memo differential" `Quick
            test_decidable_memo_differential;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "reduced runs match plain naive" `Quick
            test_reduce_differential;
          Alcotest.test_case "reduction preserves decidable values" `Quick
            test_reduce_decidable_values;
          Alcotest.test_case "reduction effectiveness" `Quick test_reduce_effectiveness;
          Alcotest.test_case "failures carry stats" `Quick test_failure_reports_stats;
        ] );
      ( "deadlines",
        [
          Alcotest.test_case "expired deadline times out" `Quick test_deadline_times_out;
          Alcotest.test_case "generous deadline is invisible" `Quick
            test_deadline_generous_is_invisible;
        ] );
    ]
