(* Differential tests for the raw-speed pass over the exploration core:
   the maintained flat fingerprint vs the reference fold, the Scratch probe
   workspace vs the persistent machine, the sharded transposition table and
   symmetry cache under concurrent domains, op interning, and the Bignum
   small-operand fast paths. *)

(* ------------------------------------------------------------------ *)
(* Fingerprint partition agreement.

   The flat (incrementally maintained) fingerprint and the from-scratch
   reference fold produce different *values* by design; what must coincide
   is the partition they induce over reachable configurations: two configs
   get equal flat fingerprints iff they get equal slow fingerprints.  We
   enumerate the schedule tree of every registry protocol and check both
   directions, for the plain and the canonical (pid-symmetric) variants. *)

let check_partition name pairs =
  let by_flat = Hashtbl.create 97 and by_slow = Hashtbl.create 97 in
  List.iter
    (fun (f, s) ->
      (match Hashtbl.find_opt by_flat f with
      | Some s' ->
        if s' <> s then
          Alcotest.failf "%s: flat fp %d maps to slow fps %d and %d" name f s' s
      | None -> Hashtbl.add by_flat f s);
      match Hashtbl.find_opt by_slow s with
      | Some f' ->
        if f' <> f then
          Alcotest.failf "%s: slow fp %d maps to flat fps %d and %d" name s f' f
      | None -> Hashtbl.add by_slow s f)
    pairs

(* All (flat, slow, canonical-flat, canonical-slow) fingerprint quadruples of
   configurations reachable within [depth] steps, capped at [cap] configs. *)
let fingerprint_quads (module P : Consensus.Proto.S) ~inputs ~depth ~cap =
  let module M = Model.Machine.Make (P.I) in
  let n = Array.length inputs in
  let root =
    M.make ~record_trace:false ~n (fun pid -> P.proc ~n ~pid ~input:inputs.(pid))
  in
  let out = ref [] and count = ref 0 in
  let rec go d cfg =
    if !count < cap then begin
      incr count;
      out :=
        ( M.fingerprint cfg,
          M.slow_fingerprint cfg,
          M.canonical_fingerprint ~inputs cfg,
          M.slow_canonical_fingerprint ~inputs cfg )
        :: !out;
      if d > 0 then List.iter (fun pid -> go (d - 1) (M.step cfg pid)) (M.running cfg)
    end
  in
  go depth root;
  !out

let test_fingerprint_partition_registry () =
  List.iter
    (fun (row : Hierarchy.row) ->
      List.iter
        (fun inputs ->
          let quads = fingerprint_quads row.protocol ~inputs ~depth:4 ~cap:400 in
          Alcotest.(check bool)
            (row.id ^ ": enumerated some configurations")
            true
            (List.length quads > 1);
          check_partition (row.id ^ " plain")
            (List.map (fun (f, s, _, _) -> (f, s)) quads);
          check_partition (row.id ^ " canonical")
            (List.map (fun (_, _, f, s) -> (f, s)) quads))
        (* duplicate inputs make the canonical quotient non-trivial *)
        [ [| 0; 1 |]; [| 1; 1 |] ])
    (Hierarchy.rows ())

(* Init-write aliasing: a location explicitly holding the initial value and
   an untouched location must fingerprint identically — in both the flat and
   the fold implementation.  The test instruction set's [Write x] returns the
   old cell, so "read loc 5" and "write 0 to loc 5" observe the same result
   (0) and leave behaviourally identical configurations that differ only in
   whether loc 5 is materialized in the memory map. *)
module Alias_cell = struct
  type cell = int
  type op = Read | Write of int
  type result = int

  let name = "{read, write} (aliasing test)"
  let init = 0
  let apply op c = match op with Read -> (c, c) | Write x -> (x, c)
  let trivial = function Read -> true | Write _ -> false
  let commutes a b = trivial a && trivial b
  let multi_assignment = false
  let equal_cell = Int.equal
  let hash_cell c = c
  let hash_result r = r
  let observe_result r = Some r
  let pp_cell = Format.pp_print_int

  let pp_op ppf = function
    | Read -> Format.pp_print_string ppf "read"
    | Write x -> Format.fprintf ppf "write %d" x

  let pp_result = Format.pp_print_int
  let sample_cells = Model.Iset.memo (fun () -> [ 0; 1; 2 ])
  let sample_ops = Model.Iset.memo (fun () -> [ Read; Write 0; Write 1 ])
end

module AM = Model.Machine.Make (Alias_cell)

let alias_cfg op =
  let root =
    AM.make ~record_trace:false ~n:1 (fun _ ->
        Model.Proc.Step ([ (5, op) ], fun _ -> Model.Proc.Done 0))
  in
  AM.step root 0

let test_init_write_aliasing () =
  let a = alias_cfg Alias_cell.Read in
  let b = alias_cfg (Alias_cell.Write 0) in
  Alcotest.(check bool)
    "flat conflates untouched and explicitly-init" true
    (AM.fingerprint a = AM.fingerprint b);
  Alcotest.(check bool)
    "fold conflates untouched and explicitly-init" true
    (AM.slow_fingerprint a = AM.slow_fingerprint b);
  (* and a genuinely different write is not conflated by either *)
  let c = alias_cfg (Alias_cell.Write 1) in
  Alcotest.(check bool) "flat separates a real write" false
    (AM.fingerprint a = AM.fingerprint c);
  Alcotest.(check bool) "fold separates a real write" false
    (AM.slow_fingerprint a = AM.slow_fingerprint c)

(* ------------------------------------------------------------------ *)
(* Scratch probe workspace vs the persistent machine.

   Every probe the checker runs is: solo-run one process, then solo-run each
   remaining running process once, then read the decisions.  The mutable
   workspace must agree with the persistent machine on decisions, the
   running set, and the decision list at every reachable configuration. *)

let scratch_differential (module P : Consensus.Proto.S) ~inputs ~depth ~cap name =
  let module M = Model.Machine.Make (P.I) in
  let n = Array.length inputs in
  let root =
    M.make ~record_trace:false ~n (fun pid -> P.proc ~n ~pid ~input:inputs.(pid))
  in
  let fuel = 2000 in
  let count = ref 0 in
  let rec go d cfg =
    if !count < cap then begin
      incr count;
      List.iter
        (fun pid ->
          (* single solo run *)
          let pc, pdec = M.run_solo ~fuel ~pid cfg in
          let s = M.Scratch.of_config cfg in
          let sdec = M.Scratch.run_solo ~fuel ~pid s in
          Alcotest.(check (option int))
            (Printf.sprintf "%s: solo decision of pid %d" name pid)
            pdec sdec;
          (* full probe chain: finish every remaining process solo *)
          let pc =
            List.fold_left (fun c q -> fst (M.run_solo ~fuel ~pid:q c)) pc (M.running pc)
          in
          List.iter
            (fun q -> ignore (M.Scratch.run_solo ~fuel ~pid:q s))
            (M.Scratch.running s);
          Alcotest.(check (list int))
            (name ^ ": running set after probe chain")
            (M.running pc) (M.Scratch.running s);
          Alcotest.(check (list (pair int int)))
            (name ^ ": decisions after probe chain")
            (M.decisions pc)
            (M.Scratch.decisions s))
        (M.running cfg);
      if d > 0 then List.iter (fun pid -> go (d - 1) (M.step cfg pid)) (M.running cfg)
    end
  in
  go depth root

let test_scratch_vs_persistent () =
  List.iter
    (fun (row : Hierarchy.row) ->
      scratch_differential row.protocol ~inputs:[| 0; 1 |] ~depth:3 ~cap:60 row.id)
    (Hierarchy.rows ())

(* A process that never decides (spins waiting for a write that cannot
   arrive solo) must be classified identically by both implementations. *)
let test_scratch_undecided () =
  let (module P : Consensus.Proto.S) =
    (module struct
      module I = Isets.Rw

      let name = "spin"
      let locations ~n:_ = Some 1

      let proc ~n:_ ~pid ~input =
        let open Model.Proc.Syntax in
        if pid = 0 then
          Model.Proc.rec_loop () (fun () ->
              let* v = Isets.Rw.read 0 in
              match v with
              | Model.Value.Int w -> Model.Proc.return (Either.Right w)
              | _ -> Model.Proc.return (Either.Left ()))
        else
          let* () = Isets.Rw.write 0 (Model.Value.Int input) in
          Model.Proc.return input
    end)
  in
  let module M = Model.Machine.Make (P.I) in
  let root = M.make ~record_trace:false ~n:2 (fun pid -> P.proc ~n:2 ~pid ~input:pid) in
  let _, pdec = M.run_solo ~fuel:500 ~pid:0 root in
  let s = M.Scratch.of_config root in
  let sdec = M.Scratch.run_solo ~fuel:500 ~pid:0 s in
  Alcotest.(check (option int)) "spinner undecided in both" pdec sdec;
  Alcotest.(check (option int)) "spinner ran out of fuel" None sdec

(* ------------------------------------------------------------------ *)
(* Engine differential: verdicts, witness schedules and decidable-value
   sets must agree across engines, reductions and fingerprint modes. *)

let verdict_kind = function
  | Explore.Completed _ -> "completed"
  | Explore.Timed_out _ -> "timeout"
  | Explore.Falsified (f : Explore.failure) -> Explore.kind_name f.witness.kind

(* rw's writes embed the writer's pid, so it is *not* pid-symmetric and the
   symmetric reduction rightly refuses it — only the certified protocols get
   the [full] reduction in the matrix. *)
let reductions_for ~symmetric_ok =
  [
    ("none", Explore.no_reduction);
    ("commute", { Explore.commute = true; symmetric = false });
  ]
  @ if symmetric_ok then [ ("full", Explore.full_reduction) ] else []

let test_engine_fingerprint_differential () =
  let protos =
    [
      ("rw", Consensus.Rw_protocol.protocol, [| 0; 1; 1 |], 6, false);
      ("maxreg", Consensus.Maxreg_protocol.protocol, [| 0; 1; 1 |], 6, true);
      ("cas", Consensus.Cas_protocol.protocol, [| 1; 1; 1 |], 8, true);
      ("arith-add", Consensus.Arith_protocols.add, [| 0; 1 |], 8, true);
    ]
  in
  List.iter
    (fun (name, proto, inputs, depth, symmetric_ok) ->
      let reference =
        verdict_kind (Explore.run ~probe:`Leaves ~engine:`Naive proto ~inputs ~depth)
      in
      List.iter
        (fun (ename, engine) ->
          List.iter
            (fun (rname, reduce) ->
              List.iter
                (fun (fname, fp) ->
                  let v =
                    verdict_kind
                      (Explore.run ~probe:`Leaves ~engine ~reduce
                         ~fingerprint_mode:fp proto ~inputs ~depth)
                  in
                  Alcotest.(check string)
                    (Printf.sprintf "%s: %s/%s/%s verdict" name ename rname fname)
                    reference v)
                [ ("flat", `Flat); ("fold", `Fold) ])
            (reductions_for ~symmetric_ok))
        [ ("naive", `Naive); ("memo", `Memo); ("parallel-2", `Parallel 2) ])
    protos

(* Broken protocols: both fingerprint modes must find the same violation
   kind, and the shrunk witness schedule must replay to that violation in
   either mode. *)
let broken_disagree : Consensus.Proto.t =
  (module struct
    module I = Isets.Rw

    let name = "broken-disagree"
    let locations ~n:_ = Some 0
    let proc ~n:_ ~pid ~input:_ = Model.Proc.return pid
  end)

let test_witness_schedule_differential () =
  let fail_of = function
    | Explore.Falsified (f : Explore.failure) -> f
    | _ -> Alcotest.fail "expected a violation"
  in
  List.iter
    (fun (fname, fp) ->
      let f =
        fail_of
          (Explore.run ~engine:`Memo ~fingerprint_mode:fp broken_disagree
             ~inputs:[| 0; 1 |] ~depth:3)
      in
      Alcotest.(check string)
        (fname ^ ": violation kind")
        "agreement"
        (Explore.kind_name f.witness.kind);
      match Explore.replay broken_disagree ~inputs:[| 0; 1 |] f.witness with
      | Ok r ->
        Alcotest.(check bool)
          (fname ^ ": witness replays to a violation")
          true (r.violation <> None)
      | Error e -> Alcotest.failf "%s: replay failed: %s" fname e)
    [ ("flat", `Flat); ("fold", `Fold) ]

let test_decidable_values_differential () =
  List.iter
    (fun (name, proto, inputs, depth, symmetric_ok) ->
      let values = function
        | Explore.Completed vs -> List.sort_uniq compare vs
        | _ -> Alcotest.fail (name ^ ": decidable_values did not complete")
      in
      let reference = values (Explore.decidable_values ~memo:false proto ~inputs ~depth) in
      Alcotest.(check bool) (name ^ ": bivalent") true (List.length reference >= 2);
      List.iter
        (fun (fname, fp) ->
          List.iter
            (fun (rname, reduce) ->
              let vs =
                values
                  (Explore.decidable_values ~memo:true ~reduce ~fingerprint_mode:fp
                     proto ~inputs ~depth)
              in
              Alcotest.(check (list int))
                (Printf.sprintf "%s: %s/%s decidable set" name fname rname)
                reference vs)
            (reductions_for ~symmetric_ok))
        [ ("flat", `Flat); ("fold", `Fold) ])
    [
      ("rw", Consensus.Rw_protocol.protocol, [| 0; 1; 1 |], 5, false);
      ("maxreg", Consensus.Maxreg_protocol.protocol, [| 0; 1; 1 |], 5, true);
    ]

(* ------------------------------------------------------------------ *)
(* Sharded transposition table. *)

let test_transposition_plan_semantics () =
  let t = Transposition.create ~concurrent:false () in
  Alcotest.(check int) "sequential table has one shard" 1 (Transposition.shard_count t);
  (* first sight explores in full *)
  (match Transposition.plan t 42 99 ~depth:5 ~sleep:0 with
  | Transposition.Visit -> ()
  | _ -> Alcotest.fail "first visit must be Visit");
  (* covered revisit: same key, shallower, superset sleep *)
  (match Transposition.plan t 42 99 ~depth:5 ~sleep:0 with
  | Transposition.Hit -> ()
  | _ -> Alcotest.fail "exact revisit must be Hit");
  (match Transposition.plan t 42 99 ~depth:3 ~sleep:0b101 with
  | Transposition.Hit -> ()
  | _ -> Alcotest.fail "shallower revisit with more sleep must be Hit");
  (* deeper revisit was not covered *)
  (match Transposition.plan t 42 99 ~depth:7 ~sleep:0 with
  | Transposition.Visit -> ()
  | _ -> Alcotest.fail "deeper revisit must be Visit");
  (* incomparable sleep set at a covered depth: re-explore only the
     transitions every adequate prior pass had asleep *)
  let t2 = Transposition.create ~concurrent:false () in
  (match Transposition.plan t2 1 2 ~depth:4 ~sleep:0b011 with
  | Transposition.Visit -> ()
  | _ -> Alcotest.fail "fresh key must be Visit");
  (match Transposition.plan t2 1 2 ~depth:4 ~sleep:0b110 with
  | Transposition.Partial inter -> Alcotest.(check int) "intersection" 0b011 inter
  | _ -> Alcotest.fail "incomparable sleep must be Partial");
  (* distinct lane-b under equal lane-a is a distinct key *)
  (match Transposition.plan t2 1 3 ~depth:4 ~sleep:0b011 with
  | Transposition.Visit -> ()
  | _ -> Alcotest.fail "distinct key must be Visit");
  Alcotest.(check int) "two keys claimed" 2 (Transposition.stats t2)

let test_transposition_concurrent_stress () =
  let t = Transposition.create ~shards:16 ~concurrent:true () in
  Alcotest.(check int) "requested shard count" 16 (Transposition.shard_count t);
  let domains = 4 and keys = 2000 in
  let visits = Array.init domains (fun _ -> Array.make keys 0) in
  let spawned =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            (* every domain races over every key; exactly one domain may win
               the Visit for each *)
            for k = 0 to keys - 1 do
              match Transposition.plan t k (k * 31) ~depth:6 ~sleep:0 with
              | Transposition.Visit -> visits.(d).(k) <- visits.(d).(k) + 1
              | Transposition.Hit -> ()
              | Transposition.Partial _ ->
                Alcotest.fail "equal sleep sets can never yield Partial"
            done))
  in
  Array.iter Domain.join spawned;
  for k = 0 to keys - 1 do
    let total = Array.fold_left (fun acc v -> acc + v.(k)) 0 visits in
    if total <> 1 then
      Alcotest.failf "key %d claimed %d Visits (want exactly 1)" k total
  done;
  Alcotest.(check int) "every key claimed once" keys (Transposition.stats t)

(* ------------------------------------------------------------------ *)
(* Sharded symmetry cache under concurrent certification. *)

let test_symmetry_cache_concurrent () =
  Analysis.Symmetry.reset_run_cache ();
  let protos =
    [
      Consensus.Tugofwar_protocol.protocol;
      Consensus.Maxreg_protocol.protocol;
      Consensus.Cas_protocol.protocol;
      Consensus.Arith_protocols.add;
    ]
  in
  let certify () =
    List.map
      (fun p ->
        Analysis.Symmetry.certified
          (Analysis.Symmetry.certify_for_run p ~inputs:[| 1; 1; 1 |]))
      protos
  in
  let spawned = Array.init 4 (fun _ -> Domain.spawn certify) in
  let results = Array.map Domain.join spawned in
  Array.iter
    (fun r ->
      Alcotest.(check (list bool))
        "all protocols certify from every domain"
        [ true; true; true; true ]
        r)
    results;
  (* the cache survives a reset: recertification still works *)
  Analysis.Symmetry.reset_run_cache ();
  Alcotest.(check (list bool))
    "recertifies after reset"
    [ true; true; true; true ]
    (certify ())

(* ------------------------------------------------------------------ *)
(* Interning. *)

let test_intern_poly () =
  let module I = Model.Intern.Poly (struct
    type t = string * int
  end) in
  let t = I.create () in
  Alcotest.(check int) "empty" 0 (I.size t);
  let a = I.id t ("read", 0) in
  let b = I.id t ("write", 1) in
  let a' = I.id t ("read", 0) in
  Alcotest.(check int) "ids dense from zero" 0 a;
  Alcotest.(check int) "second key gets next id" 1 b;
  Alcotest.(check int) "re-interning is stable" a a';
  Alcotest.(check int) "size counts distinct keys" 2 (I.size t);
  Alcotest.(check (pair string int)) "value roundtrips" ("write", 1) (I.value t b);
  Alcotest.check_raises "unassigned id raises"
    (Invalid_argument "Intern.value: unknown id") (fun () -> ignore (I.value t 9))

let test_intern_custom_hash () =
  (* equality coarser than (=): ids must follow the custom equality *)
  let module I = Model.Intern.Make (struct
    type t = int

    let equal a b = a land 0xff = b land 0xff
    let hash x = x land 0xff
  end) in
  let t = I.create ~size:4 () in
  let a = I.id t 0x101 in
  let b = I.id t 0x201 in
  Alcotest.(check int) "custom equality conflates" a b;
  Alcotest.(check int) "one key interned" 1 (I.size t)

(* ------------------------------------------------------------------ *)
(* Bignum small-operand fast paths, differentially against the general
   multi-limb code. *)

let interesting =
  [
    0; 1; -1; 2; -2; 7; -7; 0x7fffffff; -0x7fffffff; 0x80000000; -0x80000000;
    (1 lsl 62) - 1; -((1 lsl 62) - 1); 1 lsl 62; max_int; min_int + 1; min_int;
  ]

let test_compare_int_grid () =
  List.iter
    (fun x ->
      let bx = Bignum.of_int x in
      List.iter
        (fun y ->
          let want = Bignum.compare bx (Bignum.of_int y) in
          Alcotest.(check int)
            (Printf.sprintf "compare_int %d %d" x y)
            want
            (Bignum.compare_int bx y);
          Alcotest.(check bool)
            (Printf.sprintf "equal_int %d %d" x y)
            (want = 0) (Bignum.equal_int bx y))
        interesting;
      (* also against a value the int grid cannot reach *)
      let huge = Bignum.pow (Bignum.of_int 2) 200 in
      Alcotest.(check bool) "huge > every int" true (Bignum.compare_int huge x > 0);
      Alcotest.(check bool) "-huge < every int" true
        (Bignum.compare_int (Bignum.neg huge) x < 0))
    interesting

(* Route the same arithmetic through the multi-limb path by shifting the
   operands far above one limb, and check the results agree. *)
let test_small_arith_fast_paths () =
  let shift = Bignum.pow (Bignum.of_int 2) 120 in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ba = Bignum.of_int a and bb = Bignum.of_int b in
          (* add: (a·2^120 + b·2^120) / 2^120 = a + b *)
          let fast = Bignum.add ba bb in
          let slow, rem =
            Bignum.divmod (Bignum.add (Bignum.mul ba shift) (Bignum.mul bb shift)) shift
          in
          Alcotest.(check bool) "exact division" true (Bignum.is_zero rem);
          Alcotest.(check bool)
            (Printf.sprintf "add %d %d" a b)
            true (Bignum.equal fast slow);
          (* mul: (a·2^120 · b) / 2^120 = a·b *)
          let fast = Bignum.mul ba bb in
          let slow, rem = Bignum.divmod (Bignum.mul (Bignum.mul ba shift) bb) shift in
          Alcotest.(check bool) "exact division" true (Bignum.is_zero rem);
          Alcotest.(check bool)
            (Printf.sprintf "mul %d %d" a b)
            true (Bignum.equal fast slow))
        [ 0; 1; -1; 3; -3; 0x7fffffff; -0x40000001 ])
    [ 0; 1; -1; 5; -5; 0x7fffffff; -0x7fffffff ]

let test_divmod_small_fast_path () =
  List.iter
    (fun x ->
      let bx = Bignum.of_int x in
      List.iter
        (fun d ->
          let q, r = Bignum.divmod_small bx d in
          let q', r' = Bignum.divmod bx (Bignum.of_int d) in
          Alcotest.(check bool)
            (Printf.sprintf "divmod_small %d %d quotient" x d)
            true (Bignum.equal q q');
          Alcotest.(check bool)
            (Printf.sprintf "divmod_small %d %d remainder" x d)
            true
            (Bignum.equal (Bignum.of_int r) r'))
        [ 1; 2; 3; 7; 1000; 0x7fffffff ])
    [ 0; 1; -1; 17; -17; 0x7ffffffe; -0x7ffffffe; (1 lsl 61) + 5; -((1 lsl 61) + 5) ]

let test_to_int_valuation_fast_paths () =
  List.iter
    (fun x ->
      Alcotest.(check (option int))
        (Printf.sprintf "to_int (of_int %d)" x)
        (Some x)
        (Bignum.to_int (Bignum.of_int x)))
    interesting;
  (* 2-limb to_int: values needing both limbs *)
  let v = (123 lsl 31) lor 456 in
  Alcotest.(check (option int)) "two-limb to_int" (Some v) (Bignum.to_int (Bignum.of_int v));
  Alcotest.(check (option int))
    "huge value does not fit"
    None
    (Bignum.to_int (Bignum.pow (Bignum.of_int 2) 200));
  (* valuation p-adic on one-limb values, against the definition *)
  List.iter
    (fun (m, p, k) ->
      let x = Bignum.mul (Bignum.of_int m) (Bignum.pow (Bignum.of_int p) k) in
      let got_k, rest = Bignum.valuation x p in
      Alcotest.(check int) (Printf.sprintf "valuation %d^%d·%d" p k m) k got_k;
      Alcotest.(check bool) "cofactor" true (Bignum.equal rest (Bignum.of_int m)))
    [ (1, 2, 0); (3, 2, 5); (-3, 2, 5); (7, 5, 3); (-1, 3, 9); (11, 7, 0) ]

let () =
  Alcotest.run "perf_core"
    [
      ( "fingerprints",
        [
          Alcotest.test_case "registry partition agreement" `Slow
            test_fingerprint_partition_registry;
          Alcotest.test_case "init-write aliasing" `Quick test_init_write_aliasing;
        ] );
      ( "scratch",
        [
          Alcotest.test_case "probe differential over registry" `Slow
            test_scratch_vs_persistent;
          Alcotest.test_case "undecided classification" `Quick test_scratch_undecided;
        ] );
      ( "engines",
        [
          Alcotest.test_case "verdicts across engines x reductions x fp modes" `Slow
            test_engine_fingerprint_differential;
          Alcotest.test_case "witness schedules across fp modes" `Quick
            test_witness_schedule_differential;
          Alcotest.test_case "decidable-value sets across fp modes" `Slow
            test_decidable_values_differential;
        ] );
      ( "transposition",
        [
          Alcotest.test_case "claim-list plan semantics" `Quick
            test_transposition_plan_semantics;
          Alcotest.test_case "concurrent visit uniqueness" `Quick
            test_transposition_concurrent_stress;
        ] );
      ( "symmetry-cache",
        [
          Alcotest.test_case "concurrent certification" `Quick
            test_symmetry_cache_concurrent;
        ] );
      ( "intern",
        [
          Alcotest.test_case "poly table basics" `Quick test_intern_poly;
          Alcotest.test_case "custom equality" `Quick test_intern_custom_hash;
        ] );
      ( "bignum-fast-paths",
        [
          Alcotest.test_case "compare_int grid" `Quick test_compare_int_grid;
          Alcotest.test_case "add/mul vs multi-limb" `Quick test_small_arith_fast_paths;
          Alcotest.test_case "divmod_small" `Quick test_divmod_small_fast_path;
          Alcotest.test_case "to_int and valuation" `Quick
            test_to_int_valuation_fast_paths;
        ] );
    ]
