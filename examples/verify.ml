(* Verifying protocols instead of just running them.

   Because processes are pure step machines, configurations can be branched
   along every schedule: the library ships a bounded model checker and a
   protocol synthesizer.  This example (1) exhaustively checks a protocol,
   (2) watches the checker catch a planted bug, and (3) lets the
   synthesizer rediscover a protocol from nothing.

   Run with: dune exec examples/verify.exe *)

let () =
  (* 1. Exhaustive verification: every schedule of 2-process max-register
     consensus to depth 12, probing obstruction-freedom everywhere. *)
  (match
     Modelcheck.explore ~probe:`Everywhere Consensus.Maxreg_protocol.protocol
       ~inputs:[| 0; 1 |] ~depth:12
   with
   | Explore.Completed s ->
     Printf.printf
       "max-registers, n=2: no violation in %d configurations (%d solo probes)\n"
       s.configs s.probes
   | Explore.Timed_out _ -> print_endline "?! unbounded run timed out"
   | Explore.Falsified f ->
     Printf.printf "unexpected violation: %s\n" (Modelcheck.failure_message f));

  (* 2. Plant a bug: racing counters deciding at a lead of 1 instead of n.
     The checker produces the interleaving that breaks agreement. *)
  let buggy : Consensus.Proto.t =
    (module struct
      module I = Isets.Arith.Add

      let name = "racing with lead 1 (buggy)"
      let locations ~n:_ = Some 1

      let proc ~n ~pid:_ ~input =
        Consensus.Racing.consensus ~decide_lead:1
          (Objects.Arith_counters.add ~components:n ~n ~loc:0)
          ~n ~input
    end)
  in
  (match Modelcheck.explore ~probe:`Everywhere buggy ~inputs:[| 0; 1 |] ~depth:12 with
   | Explore.Completed _ | Explore.Timed_out _ -> print_endline "?! the bug survived"
   | Explore.Falsified f ->
     (* The failure carries a replayable witness, already shrunk to a minimal
        interleaving by delta debugging. *)
     Printf.printf "planted bug caught: %s\n" (Modelcheck.failure_message f);
     Format.printf "  minimal interleaving: @[%a@]@." Explore.pp_witness
       f.Explore.witness;
     Printf.printf "  (shrunk from %d scheduled steps, replay reproduces: %b)\n"
       (List.length f.Explore.original.Explore.schedule)
       f.Explore.reproduced);

  (* 3. Synthesis: ask for a wait-free 2-process consensus protocol on a
     bare compare-and-swap cell.  The search rediscovers Table 1's row. *)
  (match Synth.search Synth.cas_cell ~depth:1 with
   | Synth.Found p ->
     print_endline "synthesized from scratch on one cas cell:";
     Format.printf "  propose 0: @[%a@]@." (Synth.pp_tree ~ops:Synth.cas_cell.ops) p.t00
   | Synth.Impossible_within_depth -> print_endline "?! cas should be found");

  (* ... and prove that one test-and-set bit can never do it. *)
  match Synth.search Synth.tas_bit ~depth:3 with
  | Synth.Impossible_within_depth ->
    print_endline
      "and proved: no 2-process protocol with ≤ 3 instructions/process exists on a \
       single test-and-set bit."
  | Synth.Found _ -> print_endline "?! tas bit cannot solve consensus"
