(* CI perf-smoke gate.

   Reads the BENCH_modelcheck.json / BENCH_reduce.json a bench run just
   wrote, plus the baseline BENCH_modelcheck.json committed in the tree
   (copied aside before the run overwrites it), and fails (exit 1) when:

   - any RED row explored *more* configurations under a reduction
     (commute / symmetric / full) than the plain memoized engine did on the
     same (protocol, inputs) — the reductions must dominate plain memo;
   - any memoized MC row's configs/sec fell below the committed baseline's
     slowest memoized rate for that protocol divided by a generous factor
     (CI machines are noisy and the smoke grid is shallower than the
     baseline grid, so only an order-of-magnitude collapse trips this);
   - with --crash: any crash-free identity row of a fresh BENCH_crash.json
     disagrees with the committed baseline — the crash subsystem's
     zero-budget lane must leave every (protocol, n, depth) configuration
     count bit-identical to the pre-crash baselines, and each row's
     in-run identity bit (explicit ~crashes:0 vs no argument at all) must
     hold.  Unlike the throughput floor this is exact equality: the
     exploration is deterministic, so a single extra configuration means
     the crash budget leaked into crash-free search.

   Usage: perf_gate --baseline <committed MC json> \
                    --current <fresh MC json> --reduce <fresh RED json> \
                    [--crash <fresh CRASH json>] *)

let die fmt = Printf.ksprintf (fun s -> prerr_endline ("perf-gate: " ^ s); exit 2) fmt

(* An order-of-magnitude guard, not a tight bound: the smoke grid is
   shallower than the baseline grid and CI boxes are noisy. *)
let floor_divisor = 8.0

let read_json path =
  let ic = try open_in path with Sys_error e -> die "cannot open %s: %s" path e in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match Campaign.Json.of_string s with
  | Ok j -> j
  | Error e -> die "%s: %s" path e

let rows json =
  match Campaign.Json.(get_list (member "rows" json)) with
  | Some l -> l
  | None -> die "no \"rows\" array in bench json"

let str name j = Campaign.Json.(get_string (member name j)) |> Option.value ~default:""
let int name j = Campaign.Json.(get_int (member name j)) |> Option.value ~default:0

let extra_float name j =
  Campaign.Json.(get_float (member name (member "extra" j)))

(* --------------------------------------------------- RED domination -- *)

let check_reduction_domination red_json =
  let rows = rows red_json in
  (* plain-memo configs per (protocol row, input set) *)
  let base = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if str "reduce" r = "none" then
        let inputs =
          match Campaign.Json.(get_string (member "inputs" (member "extra" r))) with
          | Some s -> s
          | None -> "?"
        in
        Hashtbl.replace base (str "row" r, inputs) (int "configs" r))
    rows;
  let failures = ref 0 in
  List.iter
    (fun r ->
      let reduce = str "reduce" r in
      if reduce <> "none" then begin
        let inputs =
          match Campaign.Json.(get_string (member "inputs" (member "extra" r))) with
          | Some s -> s
          | None -> "?"
        in
        let row = str "row" r in
        match Hashtbl.find_opt base (row, inputs) with
        | None -> die "RED row %s/%s has no plain-memo counterpart" row inputs
        | Some plain ->
          let configs = int "configs" r in
          if configs > plain then begin
            incr failures;
            Printf.printf
              "FAIL %-11s %-9s %-10s explored %d configs > plain memo's %d\n" row
              inputs reduce configs plain
          end
          else
            Printf.printf "ok   %-11s %-9s %-10s %d <= %d\n" row inputs reduce configs
              plain
      end)
    rows;
  !failures

(* ------------------------------------------------- MC throughput floor -- *)

let memo_rates json =
  List.filter_map
    (fun r ->
      if str "engine" r = "memo" then
        match extra_float "configs_per_sec" r with
        | Some rate -> Some (str "row" r, rate)
        | None -> None
      else None)
    (rows json)

let check_throughput_floor ~baseline ~current =
  let base = memo_rates baseline in
  let floor_of row =
    (* slowest committed memoized rate for this protocol, across the
       baseline grid's (n, depth) points *)
    match List.filter_map (fun (r, v) -> if r = row then Some v else None) base with
    | [] -> None
    | rates -> Some (List.fold_left Float.min infinity rates /. floor_divisor)
  in
  let failures = ref 0 in
  List.iter
    (fun (row, rate) ->
      match floor_of row with
      | None -> Printf.printf "ok   %-11s memo %.0f cfg/s (no committed baseline row)\n" row rate
      | Some floor ->
        if rate < floor then begin
          incr failures;
          Printf.printf "FAIL %-11s memo %.0f cfg/s below floor %.0f (baseline/%.0f)\n"
            row rate floor floor_divisor
        end
        else Printf.printf "ok   %-11s memo %.0f cfg/s >= floor %.0f\n" row rate floor)
    (memo_rates current);
  !failures

(* ---------------------------------------------- crash-free identity -- *)

let extra_bool name j = Campaign.Json.(get_bool (member name (member "extra" j)))

let check_crash_free_identity ~baseline crash_json =
  (* committed memo configs per (protocol row, n, depth) *)
  let base = Hashtbl.create 16 in
  List.iter
    (fun r ->
      if str "engine" r = "memo" then
        Hashtbl.replace base (str "row" r, int "n" r, int "depth" r) (int "configs" r))
    (rows baseline);
  let free =
    match Campaign.Json.(get_list (member "crash_free" crash_json)) with
    | Some l -> l
    | None -> die "no \"crash_free\" array in crash bench json"
  in
  let failures = ref 0 in
  List.iter
    (fun r ->
      let row = str "row" r and n = int "n" r and depth = int "depth" r in
      let configs = int "configs" r in
      (match extra_bool "identical_without_crash_arg" r with
       | Some true -> ()
       | _ ->
         incr failures;
         Printf.printf "FAIL %-11s n=%d d=%d ~crashes:0 differs from no crash argument\n"
           row n depth);
      match Hashtbl.find_opt base (row, n, depth) with
      | None -> die "crash-free row %s n=%d d=%d has no committed baseline row" row n depth
      | Some committed ->
        if configs <> committed then begin
          incr failures;
          Printf.printf "FAIL %-11s n=%d d=%d explored %d configs, baseline has %d\n" row
            n depth configs committed
        end
        else Printf.printf "ok   %-11s n=%d d=%d %d configs = committed baseline\n" row n
            depth configs)
    free;
  (match Campaign.Json.(get_int (member "unexpected" crash_json)) with
   | Some 0 | None -> ()
   | Some k ->
     incr failures;
     Printf.printf "FAIL crash bench reported %d unexpected verdict(s)\n" k);
  !failures

let () =
  let baseline = ref "" and current = ref "" and reduce = ref "" and crash = ref "" in
  let rec parse = function
    | "--baseline" :: v :: rest -> baseline := v; parse rest
    | "--current" :: v :: rest -> current := v; parse rest
    | "--reduce" :: v :: rest -> reduce := v; parse rest
    | "--crash" :: v :: rest -> crash := v; parse rest
    | [] -> ()
    | a :: _ -> die "unknown argument %s" a
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !baseline = "" || !current = "" || !reduce = "" then
    die
      "usage: perf_gate --baseline <mc.json> --current <mc.json> --reduce <red.json> \
       [--crash <crash.json>]";
  print_endline "== reduction domination (RED rows) ==";
  let f1 = check_reduction_domination (read_json !reduce) in
  print_endline "== memoized throughput floor (MC rows) ==";
  let f2 =
    check_throughput_floor ~baseline:(read_json !baseline) ~current:(read_json !current)
  in
  let f3 =
    if !crash = "" then 0
    else begin
      print_endline "== crash-free identity (CRASH rows vs committed baseline) ==";
      check_crash_free_identity ~baseline:(read_json !baseline) (read_json !crash)
    end
  in
  if f1 + f2 + f3 > 0 then begin
    Printf.printf "perf-gate: %d failure(s)\n" (f1 + f2 + f3);
    exit 1
  end;
  print_endline "perf-gate: all checks passed"
