(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see EXPERIMENTS.md for the experiment index) and times the
   protocols with bechamel.

   Sections:
     T1      Table 1 — the space hierarchy, measured vs paper formulas
     T1-LB   Table 1 lower-bound entries — adversary executions
     F1      Figure 1 — concurrent appends on one ℓ-buffer history
     INTRO   Section 1 collapse examples
     STEPS   Lemma 8.7 — solo swap decision within 3n−2 scans
     BUF     Section 6 — ⌈n/ℓ⌉ capacity sweep
     MULTI   Section 7 — multiple assignment bounds
     ABL     ablations: racing decision threshold, scan stability
     CRASH   crash–recovery: crash-point enumeration + crash-free identity
     LINT    static-analysis passes: symmetry certification, registry lint
     TIME    bechamel wall-clock per protocol *)

let section title =
  Printf.printf "\n==== %s ====\n%!" title

(* ---------------------------------------------------------------- T1 -- *)

let table1 () =
  section "T1: Table 1 — space hierarchy (measured/allocated locations)";
  print_string (Hierarchy.render ~ells:[ 1; 2; 3 ] ~ns:[ 2; 3; 5; 8; 12 ] ())

(* ------------------------------------------------------------- T1-LB -- *)

let table1_lower_bounds () =
  section "T1-LB: lower-bound rows, executed";
  (match Lowerbound.Interleave.run Lowerbound.Victims.naive_maxreg ~n:2 with
   | Agreement_violated { p_decision; q_decision; steps; _ } ->
     Printf.printf
       "Thm 4.1  one max-register     : victim broken in %d writes (decisions %d/%d)\n"
       steps p_decision q_decision
   | Protocol_error e -> Printf.printf "Thm 4.1  unexpected: %s\n" e);
  (match Lowerbound.Interleave.run Lowerbound.Victims.rounds_maxreg ~n:2 with
   | Agreement_violated { steps; _ } ->
     Printf.printf
       "Thm 4.1  round-based victim   : broken too, after %d writes\n" steps
   | Protocol_error e -> Printf.printf "Thm 4.1  unexpected: %s\n" e);
  (match Lowerbound.Fai_adversary.run Lowerbound.Victims.naive_fai ~n:2 with
   | Agreement_violated { p_decision; q_decision; _ } ->
     Printf.printf
       "Thm 5.1  one r/w/f&i location : victim broken (decisions %d/%d)\n" p_decision
       q_decision
   | Protocol_error e -> Printf.printf "Thm 5.1  unexpected: %s\n" e);
  (match
     Lowerbound.Growth.run
       (Consensus.Tracks_protocol.protocol_typed ~flavour:Isets.Bits.Tas_only)
       ~rounds:10 ~inputs:[| 0; 1; 0 |]
   with
   | Ok progress ->
     let series =
       List.map (fun (p : Lowerbound.Growth.progress) -> string_of_int p.ones) progress
     in
     Printf.printf
       "Lem 9.1  {read,tas} growth    : locations set per adversary round: %s\n"
       (String.concat " " series)
   | Error e -> Printf.printf "Lem 9.1  growth stopped: %s\n" e);
  List.iter
    (fun (name, proto, inputs, depth) ->
      match Lowerbound.Covering_witness.witness ~search_depth:depth proto ~inputs with
      | Ok (r : Lowerbound.Covering_witness.report) ->
        Printf.printf
          "Lem 6.5  %-20s : Q={p%d,p%d} bivalent; R=[%s] covers L=[%s]; after a \
           %d-step Q-only run, Q covers fresh location %d; bivalent past the block \
           write: %b\n"
          name (fst r.bivalent_pair) (snd r.bivalent_pair)
          (String.concat "," (List.map string_of_int r.coverers))
          (String.concat "," (List.map string_of_int r.covered))
          r.xi_steps r.fresh_location r.still_bivalent_after_block_write
      | Error e -> Printf.printf "Lem 6.5  %-20s : %s\n" name e)
    [
      ("registers, n=3", Consensus.Rw_protocol.protocol, [| 0; 1; 2 |], 6);
      ("2-buffers, n=4", Consensus.Buffers_protocol.protocol ~capacity:2, [| 0; 1; 2; 3 |], 6);
      ("swap, n=3", Consensus.Swap_protocol.protocol, [| 0; 1; 2 |], 10);
    ]

(* ---------------------------------------------------------------- F1 -- *)

(* Figure 1 depicts ℓ concurrent appends to one ℓ-buffer: the reconstruction
   of Lemma 6.1 survives exactly up to ℓ concurrent appenders.  We sweep the
   number of concurrent appenders a for ℓ = 4 and report how many of the
   first-round appends a later reader recovers. *)
let figure1 () =
  section "F1: Figure 1 — concurrent appends on one 4-buffer history";
  let capacity = 4 in
  let module B = Isets.Buffer_set.Make (struct
    let capacity = capacity
    let multi_assignment = false
  end) in
  let module M = Model.Machine.Make (B) in
  Printf.printf "%-12s %-10s %-10s %s\n" "appenders a" "recovered" "expected"
    "(a <= l: all survive; a > l: oldest may drop)";
  List.iter
    (fun a ->
      let open Model.Proc.Syntax in
      let proc pid =
        let* () =
          Objects.History.append ~loc:0
            ~elt:(Objects.History.tag ~pid ~seq:0 (Model.Value.Int (100 + pid)))
        in
        let* h = Objects.History.get ~loc:0 in
        Model.Proc.return (List.length h)
      in
      let cfg = M.make ~n:a (fun pid -> proc pid) in
      (* all a appenders read the empty buffer, then write back-to-back:
         the figure's fully-concurrent regime *)
      let cfg = List.fold_left M.step cfg (List.init a (fun i -> i)) in
      let cfg = List.fold_left M.step cfg (List.init a (fun i -> i)) in
      let cfg, _ = M.run ~sched:(Model.Sched.solo 0) cfg in
      let recovered = Option.get (M.decision cfg 0) in
      Printf.printf "%-12d %-10d %-10d\n" a recovered (min a capacity))
    [ 1; 2; 3; 4; 5; 6; 8 ]

(* ------------------------------------------------------------- INTRO -- *)

let intro () =
  section "INTRO: Section 1 — the hierarchy collapse examples";
  Printf.printf "%-28s %-6s %-10s %-8s %s\n" "instruction set" "n" "decided" "locs"
    "steps (wait-free: <= 2 per process)";
  List.iter
    (fun n ->
      List.iter
        (fun (name, proto) ->
          let inputs = Array.init n (fun i -> i land 1) in
          let report =
            Consensus.Driver.run proto ~inputs
              ~sched:(Model.Sched.random_then_sequential ~seed:n ~prefix:50)
          in
          Consensus.Driver.check_exn report ~inputs;
          let d = match report.decisions with (_, v) :: _ -> v | [] -> -1 in
          Printf.printf "%-28s %-6d %-10d %-8d %d\n" name n d report.locations_used
            report.steps)
        [
          ("{fetch-and-add(2), tas()}", Consensus.Intro_protocols.faa2_tas);
          ("{read, decrement, multiply}", Consensus.Intro_protocols.decmul);
        ])
    [ 2; 4; 8; 16; 32 ]

(* ------------------------------------------------------------- STEPS -- *)

let steps_bound () =
  section "STEPS: Lemma 8.7 — solo swap-read decision within 3n-2 scans";
  Printf.printf "%-6s %-12s %-12s %-12s\n" "n" "steps" "scans(est)" "bound 3n-2";
  List.iter
    (fun n ->
      let inputs = Array.init n (fun i -> i) in
      let report =
        Consensus.Driver.run Consensus.Swap_protocol.protocol ~inputs
          ~sched:(Model.Sched.solo 0)
      in
      (* a solo scan costs 2(n−1) reads; swaps account for the rest *)
      let scans = report.steps / ((2 * (n - 1)) + 1) + 1 in
      Printf.printf "%-6d %-12d %-12d %-12d\n" n report.steps scans ((3 * n) - 2))
    [ 2; 3; 5; 8; 12; 16; 24 ]

(* --------------------------------------------------------------- BUF -- *)

let buffer_sweep () =
  section "BUF: Section 6 — locations = ceil(n/l) across buffer capacities";
  let n = 24 in
  Printf.printf "n = %d\n%-6s %-12s %-12s %-12s\n" n "l" "measured" "ceil(n/l)"
    "lower ceil((n-1)/l)";
  List.iter
    (fun ell ->
      let proto = Consensus.Buffers_protocol.protocol ~capacity:ell in
      let inputs = Array.init n (fun i -> i) in
      let report =
        Consensus.Driver.run ~fuel:50_000_000 proto ~inputs
          ~sched:(Model.Sched.random_then_sequential ~seed:ell ~prefix:100)
      in
      Consensus.Driver.check_exn report ~inputs;
      Printf.printf "%-6d %-12d %-12d %-12d\n" ell report.locations_used
        ((n + ell - 1) / ell)
        ((n - 1 + ell - 1) / ell))
    [ 1; 2; 3; 4; 6; 8; 12; 24 ]

(* ------------------------------------------------------------- MULTI -- *)

let multi_assignment () =
  section "MULTI: Section 7 — transactions buy at most a factor ~2";
  Printf.printf "%-6s %-22s %-22s %-20s\n" "n" "plain lower ceil((n-1)/l)"
    "multi lower ceil((n-1)/2l)" "measured upper (both)";
  let ell = 2 in
  List.iter
    (fun n ->
      let inputs = Array.init n (fun i -> i) in
      let measure proto =
        let report =
          Consensus.Driver.run ~fuel:50_000_000 proto ~inputs
            ~sched:(Model.Sched.random_then_sequential ~seed:n ~prefix:100)
        in
        Consensus.Driver.check_exn report ~inputs;
        report.locations_used
      in
      let plain = measure (Consensus.Buffers_protocol.protocol ~capacity:ell) in
      let multi = measure (Consensus.Buffers_protocol.multi_assignment_protocol ~capacity:ell) in
      Printf.printf "%-6d %-22d %-22d %d / %d\n" n
        ((n - 1 + ell - 1) / ell)
        ((n - 1 + (2 * ell) - 1) / (2 * ell))
        plain multi)
    [ 3; 5; 9; 13; 17 ]

(* --------------------------------------------------------------- ABL -- *)

(* Ablation 1: racing's decision threshold.  The paper's Lemma 3.1 needs a
   lead of n; a lead of 1 is unsound and the model checker exhibits the
   agreement violation. *)
let ablation_threshold () =
  section "ABL-lead: racing counters decision threshold";
  let proto lead : Consensus.Proto.t =
    (module struct
      module I = Isets.Arith.Add

      let name = Printf.sprintf "arith-add(lead=%d)" lead
      let locations ~n:_ = Some 1

      let proc ~n ~pid:_ ~input =
        Consensus.Racing.consensus ~decide_lead:lead
          (Objects.Arith_counters.add ~components:n ~n ~loc:0)
          ~n ~input
    end)
  in
  List.iter
    (fun lead ->
      let outcome =
        Modelcheck.explore ~probe:`Everywhere (proto lead) ~inputs:[| 0; 1 |] ~depth:12
      in
      (match outcome with
       | Explore.Completed s ->
         Printf.printf "lead=%d: no violation in %d configurations (depth 12)\n" lead
           s.configs
       | Explore.Timed_out t ->
         Printf.printf "lead=%d: timed out after %d configurations\n" lead
           t.Explore.partial.Explore.configs
       | Explore.Falsified f ->
         Printf.printf "lead=%d: VIOLATION — %s\n" lead (Modelcheck.failure_message f));
      (* and the steps cost at n=6 under contention *)
      let inputs = Array.init 6 (fun i -> i) in
      let report =
        Consensus.Driver.run (proto lead) ~inputs
          ~sched:(Model.Sched.random_then_sequential ~seed:4 ~prefix:200)
      in
      match Consensus.Driver.check report ~inputs with
      | Ok () -> Printf.printf "         n=6 adversarial steps: %d\n" report.steps
      | Error e -> Printf.printf "         n=6 adversarial run: VIOLATION — %s\n" e)
    [ 1; 2; 6 ]

(* Ablation 2: scan stability of the Bow11-substitute bounded tracks. *)
let ablation_stability () =
  section "ABL-stability: bounded-track scan stability (Bow11 substitute)";
  let proto stability : Consensus.Proto.t =
    (module struct
      module I = Isets.Bits.Make (struct
        let flavour = Isets.Bits.Write01
      end)

      let name = Printf.sprintf "write01-binary(k=%d)" stability
      let locations ~n = Some (2 * 8 * n)

      let proc ~n ~pid:_ ~input =
        Consensus.Racing.consensus ~decide_lead:n ~decrement_at:(2 * n)
          (Objects.Bit_tracks.bounded ~components:2 ~length:(8 * n) ~base:0 ~stability
             ~flavour:Isets.Bits.Write01)
          ~n ~input
    end)
  in
  List.iter
    (fun stability ->
      let inputs = [| 0; 1; 1; 0 |] in
      let steps = ref 0 and violations = ref 0 in
      for seed = 1 to 20 do
        let report =
          Consensus.Driver.run ~fuel:50_000_000 (proto stability) ~inputs
            ~sched:(Model.Sched.random_then_sequential ~seed ~prefix:400)
        in
        steps := !steps + report.steps;
        match Consensus.Driver.check report ~inputs with
        | Ok () -> ()
        | Error _ -> incr violations
      done;
      Printf.printf "stability=%d: %d violations / 20 adversarial runs, avg steps %d\n"
        stability !violations (!steps / 20))
    [ 2; 3; 4 ]

(* ------------------------------------------------------------ HETERO -- *)

let hetero () =
  section "HETERO: Section 6 remark — mixed buffer capacities";
  Printf.printf "%-20s %-6s %-10s %-12s %s\n" "capacities" "n" "sum" "locations"
    "(paper: sum >= n-1 necessary; sum >= n sufficient)";
  List.iter
    (fun (caps, n) ->
      let proto = Consensus.Hetero_protocol.protocol ~capacities:caps in
      let inputs = Array.init n (fun i -> i) in
      let report =
        Consensus.Driver.run ~fuel:50_000_000 proto ~inputs
          ~sched:(Model.Sched.random_then_sequential ~seed:n ~prefix:150)
      in
      Consensus.Driver.check_exn report ~inputs;
      Printf.printf "%-20s %-6d %-10d %-12d\n"
        ("[" ^ String.concat ";" (List.map string_of_int caps) ^ "]")
        n
        (List.fold_left ( + ) 0 caps)
        report.locations_used)
    [
      ([ 3; 2; 2 ], 7);
      ([ 5; 1; 1 ], 7);
      ([ 7 ], 7);
      ([ 1; 1; 1; 1; 1; 1; 1 ], 7);
      ([ 4; 4; 4 ], 12);
      ([ 6; 3; 2; 1 ], 12);
    ]

(* ------------------------------------------------------------ ASSIGN -- *)

let assignment () =
  section "ASSIGN: Section 7 — consensus from atomic multiple assignment";
  let inputs2 = [| 1; 0 |] in
  let r =
    Consensus.Driver.run Consensus.Assignment_protocol.two_process ~inputs:inputs2
      ~sched:(Model.Sched.random_then_sequential ~seed:1 ~prefix:10)
  in
  Consensus.Driver.check_exn r ~inputs:inputs2;
  Printf.printf
    "2-register assignment (wait-free, 2 procs): decided %d, %d locations, max %d \
     steps/process\n"
    (snd (List.hd r.decisions))
    r.locations_used
    (Array.fold_left max 0 r.steps_per_process);
  List.iter
    (fun n ->
      let inputs = Array.init n (fun i -> (i * 3) mod n) in
      let r =
        Consensus.Driver.run Consensus.Assignment_protocol.earliest_writer ~inputs
          ~sched:(Model.Sched.random_then_sequential ~seed:n ~prefix:100)
      in
      Consensus.Driver.check_exn r ~inputs;
      Printf.printf
        "earliest-writer assignment n=%-2d: decided %d, %d locations (n + C(n,2) = %d)\n" n
        (snd (List.hd r.decisions))
        r.locations_used
        (n + (n * (n - 1) / 2)))
    [ 2; 3; 5; 8 ]

(* ------------------------------------------------------------- SYNTH -- *)

let synth () =
  section "SYNTH: bounded protocol synthesis on one-location machines";
  Printf.printf
    "(2-process binary consensus; exhaustive over protocol trees of the given depth)\n";
  let show (m : _ Synth.machine) depth =
    match Synth.search m ~depth with
    | Synth.Found p ->
      assert (Synth.check m p);
      Printf.printf "%-42s depth %d: FOUND a wait-free protocol\n" m.name depth;
      Format.printf "    p0/input0: @[%a@]@." (Synth.pp_tree ~ops:m.ops) p.t00;
      Format.printf "    p1/input1: @[%a@]@." (Synth.pp_tree ~ops:m.ops) p.t11
    | Synth.Impossible_within_depth ->
      Printf.printf "%-42s depth %d: impossible within depth\n" m.name depth
  in
  show Synth.cas_cell 1;
  show Synth.swap_cell 1;
  show Synth.tas_bit 2;
  show Synth.tas_bit 3;
  show Synth.rw01_bit 2;
  print_endline
    "  (the single-bit impossibilities quantify Section 9's two-process remark: one\n\
    \   tas bit elects a leader, but holds no room for the winning value)";
  print_endline "\n  three processes (consensus numbers, experimentally):";
  let show3 (m : _ Synth.machine) mode depth =
    match Synth.search3 ~mode m ~depth with
    | Synth.Found3 trees ->
      assert (Synth.check3 m trees);
      Printf.printf "  %-40s depth %d (%s): 3-process protocol FOUND\n" m.name depth
        (match mode with `Full -> "full" | `Symmetric -> "symmetric")
    | Synth.Impossible3_within_depth ->
      Printf.printf "  %-40s depth %d (%s): impossible within depth\n" m.name depth
        (match mode with `Full -> "full" | `Symmetric -> "symmetric")
  in
  show3 Synth.cas_cell `Full 1;
  show3 Synth.swap_cell `Full 1;
  show3 Synth.tas_bit `Full 3;
  print_endline
    "  (cas solves 3 processes with one location; swap — consensus number 2 in\n\
    \   Herlihy's hierarchy — does not: the two hierarchies meet here)"

(* -------------------------------------------------------------- STEPC -- *)

let step_complexity () =
  section "STEPC: per-process step complexity (conclusions' next axis)";
  Printf.printf "%-24s %s\n" "protocol"
    "max steps by any process, adversarial run, n = 2 / 4 / 8";
  List.iter
    (fun (name, proto) ->
      let cells =
        List.map
          (fun n ->
            let inputs = Array.init n (fun i -> i mod n) in
            let r =
              Consensus.Driver.run ~fuel:50_000_000 proto ~inputs
                ~sched:(Model.Sched.random_then_sequential ~seed:7 ~prefix:200)
            in
            Consensus.Driver.check_exn r ~inputs;
            Printf.sprintf "%6d" (Array.fold_left max 0 r.steps_per_process))
          [ 2; 4; 8 ]
      in
      Printf.printf "%-24s %s\n" name (String.concat " " cells))
    [
      ("cas", Consensus.Cas_protocol.protocol);
      ("arith-add", Consensus.Arith_protocols.add);
      ("max-registers", Consensus.Maxreg_protocol.protocol);
      ("swap-read", Consensus.Swap_protocol.protocol);
      ("rw-registers", Consensus.Rw_protocol.protocol);
      ("buffers-2", Consensus.Buffers_protocol.protocol ~capacity:2);
      ( "increment-logn",
        Consensus.Increment_protocol.protocol ~flavour:Isets.Incr.Increment_only );
      ("earliest-writer", Consensus.Assignment_protocol.earliest_writer);
    ]

(* --------------------------------------------------------------- CONJ -- *)

(* Section 10 conjectures SP({read, write, increment}) ∈ Θ(log n); the
   upper curve is ours to measure. *)
let conjecture_curve () =
  section "CONJ: Section 10 — the Θ(log n) conjecture's upper curve";
  Printf.printf "%-6s %-14s %-14s\n" "n" "locations" "4*ceil(lg n)-2";
  List.iter
    (fun n ->
      let (module P : Consensus.Proto.S) =
        Consensus.Increment_protocol.protocol ~flavour:Isets.Incr.Increment_only
      in
      let inputs = Array.init n (fun i -> i) in
      let r =
        Consensus.Driver.run ~fuel:50_000_000
          (Consensus.Increment_protocol.protocol ~flavour:Isets.Incr.Increment_only)
          ~inputs
          ~sched:(Model.Sched.random_then_sequential ~seed:n ~prefix:100)
      in
      Consensus.Driver.check_exn r ~inputs;
      Printf.printf "%-6d %-14d %-14s\n" n r.locations_used
        (match P.locations ~n with Some a -> string_of_int a | None -> "-"))
    [ 2; 4; 8; 16; 32; 64 ];
  print_endline
    "  (the paper conjectures a matching Omega(log n) lower bound; only 2 is proven)"

(* --------------------------------------------------------------- RAND -- *)

let randomized () =
  section "RAND: purely random schedules (the [GHHW13] connection)";
  Printf.printf
    "obstruction-free protocols terminate with probability 1 under a random\n\
     (oblivious) scheduler; steps until all of n = 4 decide, 10 seeds:\n";
  List.iter
    (fun (name, proto) ->
      let steps =
        List.map
          (fun seed ->
            let inputs = [| 0; 1; 2; 3 |] in
            let r =
              Consensus.Driver.run ~fuel:50_000_000 proto ~inputs
                ~sched:(Model.Sched.random ~seed)
            in
            Consensus.Driver.check_exn r ~inputs;
            assert (r.outcome = `All_decided);
            r.steps)
          [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
      in
      let total = List.fold_left ( + ) 0 steps in
      Printf.printf "%-24s min %6d   avg %6d   max %6d\n" name
        (List.fold_left min max_int steps)
        (total / List.length steps)
        (List.fold_left max 0 steps))
    [
      ("arith-add", Consensus.Arith_protocols.add);
      ("max-registers", Consensus.Maxreg_protocol.protocol);
      ("swap-read", Consensus.Swap_protocol.protocol);
      ("rw-registers", Consensus.Rw_protocol.protocol);
      ("buffers-2", Consensus.Buffers_protocol.protocol ~capacity:2);
    ]

(* ---------------------------------------------------------------- MC -- *)

(* Model-checking engines head-to-head: the naive full-tree walk vs the
   fingerprint-memoized walk vs the parallel frontier, over depth × n for a
   few representative protocols.  Memo visits fewer configurations by
   design, so the honest work-rate comparison is the *effective* rate:
   naive's configuration count divided by each engine's wall-clock (the
   speedup column is exactly the elapsed-time ratio).  Results go to
   BENCH_modelcheck.json as {!Campaign.Record} lists — the same schema the
   campaign store persists, so bench and campaign outputs share tooling. *)

let status_of_witness (w : Explore.witness) =
  Campaign.Record.Violation
    {
      kind = Explore.kind_name w.Explore.kind;
      message = w.Explore.message;
      schedule = w.Explore.schedule;
      probe = w.Explore.probe;
    }

let bench_record ?(crashes = 0) ~kind ~row ~proto ~inputs ~params ~n ~depth ~engine
    ~reduce ~status ~(stats : Explore.stats) ~extra () =
  Campaign.Record.make
    ~task:(Campaign.Task.digest proto ~inputs ~params)
    ~kind ~row
    ~protocol:(Consensus.Proto.name proto)
    ~n ~depth ~engine ~reduce ~crashes ~status ~configs:stats.Explore.configs
    ~probes:stats.Explore.probes ~dedup_hits:stats.Explore.dedup_hits
    ~sleep_pruned:stats.Explore.sleep_pruned ~truncated:stats.Explore.truncated
    ~elapsed:stats.Explore.elapsed ~extra ()

let write_json file json =
  let oc = open_out file in
  output_string oc (Campaign.Json.to_string_pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "\nwrote %s\n" file

let mc ?(smoke = false) () =
  section "MC: model-checking engines — naive vs memoized vs parallel";
  let protos =
    [
      ("rw", Consensus.Rw_protocol.protocol);
      ("maxreg", Consensus.Maxreg_protocol.protocol);
      ("swap", Consensus.Swap_protocol.protocol);
      ("arith-add", Consensus.Arith_protocols.add);
    ]
  in
  let sweeps = if smoke then [ (2, 6) ] else [ (2, 10); (3, 8) ] in
  let engines =
    [
      ("naive", `Naive);
      ("memo", `Memo);
      ("parallel-2", `Parallel 2);
      ("parallel-4", `Parallel 4);
    ]
  in
  (* Timing rows are best-of-[reps]: one core, noisy neighbours — counters
     are identical across repetitions, only the wall clock varies, and the
     minimum is the closest to the engine's true cost.  Rows that finish in
     a couple of milliseconds are repeated until ~100ms of total wall clock
     has accumulated (capped), otherwise a single scheduling hiccup can
     swing the row by 25%. *)
  let reps = if smoke then 2 else 3 in
  let max_reps = if smoke then 8 else 64 in
  let min_total = 0.1 in
  let cores = Domain.recommended_domain_count () in
  let records = ref [] in
  Printf.printf "%-10s %-3s %-5s %-11s %10s %8s %10s %10s %12s %8s  %s\n" "protocol" "n"
    "depth" "engine" "configs" "dedup" "elapsed_s" "cfg/s" "eff_cfg/s" "speedup"
    "verdict";
  List.iter
    (fun (n, depth) ->
      List.iter
        (fun (pname, proto) ->
          let inputs = Array.init n (fun i -> i) in
          let naive_elapsed = ref 0.0 and naive_configs = ref 0 in
          let memo_elapsed = ref 0.0 in
          List.iter
            (fun (ename, engine) ->
              let record ~status ~stats ~extra =
                records :=
                  bench_record ~kind:"bench-mc" ~row:pname ~proto ~inputs
                    ~params:(Printf.sprintf "bench-mc/%s/%d/%d" ename n depth)
                    ~n ~depth ~engine:ename ~reduce:"none" ~status ~stats ~extra ()
                  :: !records
              in
              let rec measure i total best =
                match Explore.run ~probe:`Leaves ~engine proto ~inputs ~depth with
                | Explore.Completed s ->
                  let total = total +. s.Explore.elapsed in
                  let best =
                    match best with
                    | Some b when b.Explore.elapsed <= s.Explore.elapsed -> b
                    | _ -> s
                  in
                  if (i + 1 >= reps && total >= min_total) || i + 1 >= max_reps
                  then Explore.Completed best
                  else measure (i + 1) total (Some best)
                | other -> other
              in
              match measure 0 0.0 None with
              | Explore.Completed s ->
                if engine = `Naive then begin
                  naive_elapsed := s.Explore.elapsed;
                  naive_configs := s.Explore.configs
                end;
                if engine = `Memo then memo_elapsed := s.Explore.elapsed;
                let elapsed = Float.max s.Explore.elapsed 1e-6 in
                let rate = float_of_int s.Explore.configs /. elapsed in
                let eff_rate = float_of_int !naive_configs /. elapsed in
                let speedup = Float.max !naive_elapsed 1e-6 /. elapsed in
                Printf.printf
                  "%-10s %-3d %-5d %-11s %10d %8d %10.4f %10.0f %12.0f %7.1fx  ok\n"
                  pname n depth ename s.Explore.configs s.Explore.dedup_hits
                  s.Explore.elapsed rate eff_rate speedup;
                let extra =
                  [
                    ("configs_per_sec", Campaign.Json.Float rate);
                    ("effective_configs_per_sec", Campaign.Json.Float eff_rate);
                    ("speedup_vs_naive", Campaign.Json.Float speedup);
                  ]
                in
                let extra =
                  match engine with
                  | `Parallel k ->
                    (* Efficiency normalizes the naive-relative speedup by
                       the parallelism the host can actually grant: on a
                       [cores]-core box, domains beyond [cores] timeshare
                       one core and cannot add speedup, so dividing by the
                       raw domain count would measure the OS scheduler,
                       not the engine.  [overhead_vs_memo] keeps the
                       sequential comparison honest alongside it. *)
                    extra
                    @ [
                        ("domains", Campaign.Json.Int k);
                        ( "parallel_efficiency",
                          Campaign.Json.Float
                            (speedup /. float_of_int (Stdlib.min k cores)) );
                        ( "overhead_vs_memo",
                          Campaign.Json.Float
                            (elapsed /. Float.max !memo_elapsed 1e-6) );
                      ]
                  | _ -> extra
                in
                record ~status:Campaign.Record.Verified ~stats:s ~extra
              | Explore.Timed_out t ->
                Printf.printf "%-10s %-3d %-5d %-11s timed out after %d configurations\n"
                  pname n depth ename t.Explore.partial.Explore.configs;
                record ~status:Campaign.Record.Timeout ~stats:t.Explore.partial ~extra:[]
              | Explore.Falsified f ->
                Printf.printf "%-10s %-3d %-5d %-11s VIOLATION %s\n" pname n depth ename
                  (Explore.failure_message f);
                record ~status:(status_of_witness f.Explore.witness)
                  ~stats:f.Explore.stats ~extra:[])
            engines)
        protos)
    sweeps;
  let budget = if smoke then 0.2 else 1.0 in
  Printf.printf
    "\niterative deepening (memo engine, %.1f s budget per protocol, n=2):\n" budget;
  Printf.printf "%-10s %-13s %-9s %14s %10s\n" "protocol" "depth_reached" "complete"
    "total_configs" "elapsed_s";
  let deepen_records = ref [] in
  List.iter
    (fun (pname, proto) ->
      let inputs = [| 0; 1 |] in
      let record ~status ~depth ~configs ~elapsed ~extra =
        deepen_records :=
          Campaign.Record.make
            ~task:
              (Campaign.Task.digest proto ~inputs
                 ~params:(Printf.sprintf "bench-deepen/%.2f" budget))
            ~kind:"bench-deepen" ~row:pname
            ~protocol:(Consensus.Proto.name proto)
            ~n:2 ~depth ~engine:"memo" ~reduce:"none" ~status ~configs ~elapsed
            ~extra:(("budget", Campaign.Json.Float budget) :: extra)
            ()
          :: !deepen_records
      in
      match Explore.deepen ~engine:`Memo ~budget proto ~inputs ~max_depth:30 with
      | Explore.Completed r ->
        Printf.printf "%-10s %-13d %-9b %14d %10.4f\n" pname r.Explore.depth_reached
          r.Explore.complete r.Explore.total_configs r.Explore.total_elapsed;
        record ~status:Campaign.Record.Verified ~depth:r.Explore.depth_reached
          ~configs:r.Explore.total_configs ~elapsed:r.Explore.total_elapsed
          ~extra:[ ("complete", Campaign.Json.Bool r.Explore.complete) ]
      | Explore.Timed_out t ->
        Printf.printf "%-10s timed out before completing depth 1\n" pname;
        record ~status:Campaign.Record.Timeout ~depth:1
          ~configs:t.Explore.partial.Explore.configs
          ~elapsed:t.Explore.partial.Explore.elapsed ~extra:[]
      | Explore.Falsified f ->
        Printf.printf "%-10s VIOLATION %s\n" pname (Explore.failure_message f);
        record
          ~status:(status_of_witness f.Explore.witness)
          ~depth:1 ~configs:f.Explore.stats.Explore.configs
          ~elapsed:f.Explore.stats.Explore.elapsed ~extra:[])
    protos;
  write_json "BENCH_modelcheck.json"
    (Campaign.Json.Obj
       [
         ("cores", Campaign.Json.Int (Domain.recommended_domain_count ()));
         ("smoke", Campaign.Json.Bool smoke);
         ( "rows",
           Campaign.Json.List (List.rev_map Campaign.Record.to_json !records) );
         ( "deepen",
           Campaign.Json.List (List.rev_map Campaign.Record.to_json !deepen_records) );
       ])

(* --------------------------------------------------------------- OBS -- *)

(* Observer overhead: the same memoized exploration with no observers,
   with the default safety/liveness set, and with every built-in attached.
   The headline metric is the wall-clock ratio against the unobserved run —
   the perf acceptance bar for the subsystem is "defaults cost < 10% on the
   memo engine" (the no-observer path shares no code with the hooks, so an
   empty set is free by construction). *)
let obs ?(smoke = false) () =
  section "OBS: observer overhead — memo engine, unobserved vs monitored";
  let protos =
    [
      ("rw", Consensus.Rw_protocol.protocol);
      ("maxreg", Consensus.Maxreg_protocol.protocol);
      ("swap", Consensus.Swap_protocol.protocol);
    ]
  in
  let sweeps = if smoke then [ (2, 6) ] else [ (2, 10); (3, 8) ] in
  let all_observers =
    List.filter_map
      (fun (name, _doc) ->
        match Observer.of_name name with Ok o -> Some o | Error _ -> None)
      Observer.known
  in
  let sets =
    [
      ("none", []);
      ("default", Observer.defaults);
      ("all", all_observers);
    ]
  in
  Printf.printf "%-10s %-3s %-5s %-9s %10s %10s %9s  %s\n" "protocol" "n" "depth"
    "observers" "configs" "elapsed_s" "overhead" "verdict";
  List.iter
    (fun (n, depth) ->
      List.iter
        (fun (pname, proto) ->
          let inputs = Array.init n (fun i -> i) in
          let base_elapsed = ref 0.0 in
          List.iter
            (fun (sname, observers) ->
              let reps = if smoke then 2 else 5 in
              let best = ref Float.infinity and configs = ref 0 and ok = ref true in
              for _ = 1 to reps do
                match
                  Explore.run ~probe:`Leaves ~engine:`Memo ~observers proto
                    ~inputs ~depth
                with
                | Explore.Completed s ->
                  best := Float.min !best s.Explore.elapsed;
                  configs := s.Explore.configs
                | _ -> ok := false
              done;
              if !ok then begin
                if observers = [] then base_elapsed := !best;
                let overhead = !best /. Float.max !base_elapsed 1e-9 in
                Printf.printf "%-10s %-3d %-5d %-9s %10d %10.4f %8.2fx  ok\n" pname
                  n depth sname !configs !best overhead
              end
              else
                Printf.printf "%-10s %-3d %-5d %-9s %10s %10s %9s  NOT VERIFIED\n"
                  pname n depth sname "-" "-" "-")
            sets)
        protos)
    sweeps

(* --------------------------------------------------------------- RED -- *)

(* The reduction layer vs the plain memoized engine: commutativity sleep
   sets prune redundant interleavings of independent steps, and process
   symmetry (sound for these pid-symmetric protocols) quotients the
   transposition table by permutations of equal-input processes.  The
   headline metric is the configuration-count ratio of plain [`Memo] to
   [`Memo]+full reduction; verdicts are cross-checked against [`Naive] on
   every row.  Results also go to BENCH_reduce.json. *)
let red ?(smoke = false) () =
  section "RED: state-space reduction — commutativity sleep sets + process symmetry";
  (* every protocol here is pid-symmetric: its code never branches on the
     process id except through the input, so `symmetric is sound *)
  let protos =
    [
      ("maxreg", Consensus.Maxreg_protocol.protocol);
      ("arith-add", Consensus.Arith_protocols.add);
      ("cas", Consensus.Cas_protocol.protocol);
      ("tug-of-war", Consensus.Tugofwar_protocol.protocol);
    ]
  in
  let protos = if smoke then [ List.hd protos; List.nth protos 1 ] else protos in
  let n = 3 in
  let depth = if smoke then 6 else 8 in
  (* duplicate inputs are where symmetry bites: with all-distinct inputs no
     two processes are interchangeable and `symmetric degenerates to plain
     fingerprinting *)
  let input_sets = [ ("unanimous", Array.make n 1); ("mixed", [| 0; 1; 1 |]) ] in
  let reductions =
    [
      ("none", Explore.no_reduction);
      ("commute", { Explore.commute = true; symmetric = false });
      ("symmetric", { Explore.commute = false; symmetric = true });
      ("full", Explore.full_reduction);
    ]
  in
  let verdict_kind = function
    | Explore.Completed _ -> "ok"
    | Explore.Timed_out _ -> "timeout"
    | Explore.Falsified (f : Explore.failure) ->
      Explore.kind_name f.Explore.witness.Explore.kind
  in
  let stats_of = function
    | Explore.Completed s -> s
    | Explore.Timed_out t -> t.Explore.partial
    | Explore.Falsified f -> f.Explore.stats
  in
  let status_of = function
    | Explore.Completed _ -> Campaign.Record.Verified
    | Explore.Timed_out _ -> Campaign.Record.Timeout
    | Explore.Falsified f -> status_of_witness f.Explore.witness
  in
  let records = ref [] in
  let target_hits = ref 0 in
  Printf.printf "%-11s %-9s %-10s %10s %8s %12s %10s %7s  %s\n" "protocol" "inputs"
    "reduce" "configs" "dedup" "sleep_pruned" "elapsed_s" "ratio" "verdict";
  List.iter
    (fun (pname, proto) ->
      List.iter
        (fun (iname, inputs) ->
          let naive_verdict =
            verdict_kind (Explore.run ~probe:`Leaves ~engine:`Naive proto ~inputs ~depth)
          in
          let base_configs = ref 0 in
          List.iter
            (fun (rname, reduce) ->
              let out = Explore.run ~probe:`Leaves ~engine:`Memo ~reduce proto ~inputs ~depth in
              let v = verdict_kind out in
              let agree = v = naive_verdict in
              let s = stats_of out in
              if rname = "none" then base_configs := s.Explore.configs;
              let ratio = float_of_int !base_configs /. float_of_int (max 1 s.Explore.configs) in
              if rname = "full" && iname = "unanimous" && ratio >= 3.0 then incr target_hits;
              Printf.printf "%-11s %-9s %-10s %10d %8d %12d %10.4f %6.2fx  %s%s\n" pname
                iname rname s.Explore.configs s.Explore.dedup_hits s.Explore.sleep_pruned
                s.Explore.elapsed ratio v
                (if agree then "" else "  [DISAGREES WITH NAIVE: " ^ naive_verdict ^ "]");
              records :=
                bench_record ~kind:"bench-reduce" ~row:pname ~proto ~inputs
                  ~params:(Printf.sprintf "bench-reduce/%s/%s/%d/%d" iname rname n depth)
                  ~n ~depth ~engine:"memo" ~reduce:rname ~status:(status_of out) ~stats:s
                  ~extra:
                    [
                      ("inputs", Campaign.Json.String iname);
                      ("ratio_vs_plain_memo", Campaign.Json.Float ratio);
                      ("agrees_with_naive", Campaign.Json.Bool agree);
                    ]
                  ()
                :: !records)
            reductions)
        input_sets)
    protos;
  Printf.printf
    "\n%d protocol(s) with >= 3x fewer configurations under full reduction (unanimous \
     inputs)\n"
    !target_hits;
  write_json "BENCH_reduce.json"
    (Campaign.Json.Obj
       [
         ("n", Campaign.Json.Int n);
         ("depth", Campaign.Json.Int depth);
         ("smoke", Campaign.Json.Bool smoke);
         ("rows", Campaign.Json.List (List.rev_map Campaign.Record.to_json !records));
         ("protocols_with_3x_reduction_unanimous", Campaign.Json.Int !target_hits);
       ])

(* --------------------------------------------------------------- WIT -- *)

(* Counterexample witnesses: run each engine against the lower-bound victim
   protocols (known-broken by Theorems 4.1/5.1), and report the witness each
   engine finds, how far shrinking got, and whether the shrunk schedule
   replays to the same violation. *)
let witnesses ?(smoke = false) () =
  section "WIT: counterexample witnesses — capture, shrink, replay";
  let victims =
    [
      ( "naive-maxreg",
        (let (module V) = Lowerbound.Victims.naive_maxreg in
         ((module V) : Consensus.Proto.t)),
        6 );
      ( "naive-fai",
        (let (module V) = Lowerbound.Victims.naive_fai in
         ((module V) : Consensus.Proto.t)),
        8 );
    ]
  in
  let engines =
    if smoke then [ ("naive", `Naive); ("memo", `Memo) ]
    else [ ("naive", `Naive); ("memo", `Memo); ("parallel-2", `Parallel 2) ]
  in
  Printf.printf "%-14s %-11s %-20s %8s %8s %9s %8s\n" "victim" "engine" "kind" "found"
    "shrunk" "attempts" "replays";
  List.iter
    (fun (vname, proto, depth) ->
      List.iter
        (fun (ename, engine) ->
          match Explore.run ~probe:`Everywhere ~engine proto ~inputs:[| 0; 1 |] ~depth with
          | Explore.Completed s ->
            Printf.printf "%-14s %-11s no violation in %d configurations?!\n" vname ename
              s.Explore.configs
          | Explore.Timed_out t ->
            Printf.printf "%-14s %-11s timed out after %d configurations?!\n" vname ename
              t.Explore.partial.Explore.configs
          | Explore.Falsified f ->
            let w = f.Explore.witness in
            let replays =
              match Explore.replay proto ~inputs:[| 0; 1 |] w with
              | Ok r ->
                (match r.Explore.violation with
                 | Some (k, _) -> k = w.Explore.kind
                 | None -> false)
              | Error _ -> false
            in
            Printf.printf "%-14s %-11s %-20s %8d %8d %9d %8b\n" vname ename
              (Explore.kind_name w.Explore.kind)
              (List.length f.Explore.original.Explore.schedule)
              (List.length w.Explore.schedule)
              f.Explore.shrink_attempts replays;
            Printf.printf "    %s\n"
              (Format.asprintf "%a" Explore.pp_witness w))
        engines)
    victims

(* ------------------------------------------------------------- CRASH -- *)

(* The crash–recovery subsystem (Golab, arXiv 1804.10597) on its registry
   rows: exhaustive crash-point enumeration must falsify the
   non-recoverable TAS protocol under any positive budget — with a
   crash-bearing, replayable witness — and certify the CAS protocol on
   every engine.  Then the crash-free identity check: a [~crashes:0]
   exploration of the ordinary MC grid must produce statistics
   bit-identical to a run without the argument, and config counts equal to
   the committed BENCH_modelcheck.json baselines (asserted by
   `perf_gate --crash`).  The identity sweep always uses the committed
   baseline's full (n, depth) grid — memo-only, so it is cheap even under
   --smoke.  Results go to BENCH_crash.json. *)
let crash_bench ~smoke () =
  section "CRASH: crash-recovery — crash-point enumeration + crash-free identity";
  let rc_rows =
    List.filter
      (fun (r : Hierarchy.row) ->
        String.length r.id >= 3 && String.sub r.id 0 3 = "rc-")
      (Hierarchy.rows ~recovery:true ())
  in
  let engines = [ ("naive", `Naive); ("memo", `Memo); ("parallel-2", `Parallel 2) ] in
  let budgets_of ename = if smoke || ename <> "memo" then [ 0; 1 ] else [ 0; 1; 2 ] in
  let depth_of id = if id = "rc-cas" then 14 else 10 in
  let n = 2 in
  let records = ref [] in
  let unexpected = ref 0 in
  Printf.printf "%-14s %-11s %-7s %10s %8s %10s %8s  %s\n" "row" "engine" "crashes"
    "configs" "dedup" "elapsed_s" "replays" "verdict";
  List.iter
    (fun (row : Hierarchy.row) ->
      let proto = row.protocol in
      let inputs = Array.init n (fun i -> i) in
      let depth = depth_of row.id in
      List.iter
        (fun (ename, engine) ->
          List.iter
            (fun crashes ->
              let expect =
                (* budget 0 completes everywhere; under crashes only the
                   recoverable row survives — Golab's TAS/CAS separation *)
                if crashes = 0 || row.id = "rc-cas" then "ok" else "agreement"
              in
              let record ~status ~stats ~extra =
                records :=
                  bench_record ~crashes ~kind:"bench-crash" ~row:row.id ~proto ~inputs
                    ~params:(Printf.sprintf "bench-crash/%s/%d/%d/%d" ename n depth crashes)
                    ~n ~depth ~engine:ename ~reduce:"none" ~status ~stats ~extra ()
                  :: !records
              in
              let line verdict replays (s : Explore.stats) =
                if verdict <> expect then incr unexpected;
                Printf.printf "%-14s %-11s %-7d %10d %8d %10.4f %8s  %s%s\n" row.id
                  ename crashes s.Explore.configs s.Explore.dedup_hits s.Explore.elapsed
                  replays verdict
                  (if verdict = expect then "" else "  [EXPECTED " ^ expect ^ "]")
              in
              match Explore.run ~probe:`Leaves ~engine ~crashes proto ~inputs ~depth with
              | Explore.Completed s ->
                line "ok" "-" s;
                record ~status:Campaign.Record.Verified ~stats:s
                  ~extra:[ ("expected", Campaign.Json.String expect) ]
              | Explore.Timed_out t ->
                line "timeout" "-" t.Explore.partial;
                record ~status:Campaign.Record.Timeout ~stats:t.Explore.partial ~extra:[]
              | Explore.Falsified f ->
                let w = f.Explore.witness in
                let crash_events =
                  List.length (List.filter Explore.is_crash w.Explore.schedule)
                in
                let replays =
                  match Explore.replay proto ~inputs w with
                  | Ok r ->
                    (match r.Explore.violation with
                     | Some (k, _) -> k = w.Explore.kind
                     | None -> false)
                  | Error _ -> false
                in
                line (Explore.kind_name w.Explore.kind) (string_of_bool replays)
                  f.Explore.stats;
                record ~status:(status_of_witness w) ~stats:f.Explore.stats
                  ~extra:
                    [
                      ("expected", Campaign.Json.String expect);
                      ("crash_events_in_witness", Campaign.Json.Int crash_events);
                      ( "schedule_found",
                        Campaign.Json.Int (List.length f.Explore.original.Explore.schedule) );
                      ( "schedule_shrunk",
                        Campaign.Json.Int (List.length w.Explore.schedule) );
                      ("replays", Campaign.Json.Bool replays);
                    ])
            (budgets_of ename))
        engines)
    rc_rows;
  (* crash-free identity over the ordinary MC grid: [~crashes:0] must not
     perturb a single counter — the zero-budget lane is dead code by
     construction, and this is the observable form of "fingerprints and
     transposition keys are unchanged" the acceptance bar asks for *)
  let protos =
    [
      ("rw", Consensus.Rw_protocol.protocol);
      ("maxreg", Consensus.Maxreg_protocol.protocol);
      ("swap", Consensus.Swap_protocol.protocol);
      ("arith-add", Consensus.Arith_protocols.add);
    ]
  in
  let free_records = ref [] in
  Printf.printf "\ncrash-free identity (memo, committed baseline grid):\n";
  Printf.printf "%-10s %-3s %-5s %10s %10s  %s\n" "protocol" "n" "depth" "configs"
    "baseline" "identical to run without --crashes";
  List.iter
    (fun (n, depth) ->
      List.iter
        (fun (pname, proto) ->
          let inputs = Array.init n (fun i -> i) in
          let stats_of = function
            | Explore.Completed s -> s
            | Explore.Timed_out t -> t.Explore.partial
            | Explore.Falsified (f : Explore.failure) -> f.Explore.stats
          in
          let counters (s : Explore.stats) =
            (s.Explore.configs, s.Explore.probes, s.Explore.dedup_hits,
             s.Explore.sleep_pruned, s.Explore.truncated)
          in
          let plain =
            stats_of (Explore.run ~probe:`Leaves ~engine:`Memo proto ~inputs ~depth)
          in
          let zero =
            stats_of
              (Explore.run ~probe:`Leaves ~engine:`Memo ~crashes:0 proto ~inputs ~depth)
          in
          let identical = counters plain = counters zero in
          if not identical then incr unexpected;
          Printf.printf "%-10s %-3d %-5d %10d %10s  %s\n" pname n depth
            zero.Explore.configs "(gate)"
            (if identical then "yes" else "NO — CRASH SUBSYSTEM PERTURBED THE ENGINE");
          free_records :=
            bench_record ~kind:"bench-crash-free" ~row:pname ~proto ~inputs
              ~params:(Printf.sprintf "bench-crash-free/%d/%d" n depth)
              ~n ~depth ~engine:"memo" ~reduce:"none" ~status:Campaign.Record.Verified
              ~stats:zero
              ~extra:[ ("identical_without_crash_arg", Campaign.Json.Bool identical) ]
              ()
            :: !free_records)
        protos)
    [ (2, 10); (3, 8) ];
  Printf.printf "\n%d unexpected verdict(s)\n" !unexpected;
  write_json "BENCH_crash.json"
    (Campaign.Json.Obj
       [
         ("smoke", Campaign.Json.Bool smoke);
         ("n", Campaign.Json.Int n);
         ("unexpected", Campaign.Json.Int !unexpected);
         ("rows", Campaign.Json.List (List.rev_map Campaign.Record.to_json !records));
         ( "crash_free",
           Campaign.Json.List (List.rev_map Campaign.Record.to_json !free_records) );
       ])

(* -------------------------------------------------------------- CAMP -- *)

(* The campaign runner itself: a cold smoke campaign into a fresh store,
   then the same campaign again — the warm run must execute nothing and
   cost (almost) nothing, which is the resume path's whole point.  Results
   go to BENCH_campaign.json. *)
let campaign_bench ~smoke () =
  section "CAMP: campaign runner — cold run vs resumed warm run";
  let spec =
    if smoke then Campaign.Spec.smoke
    else { Campaign.Spec.default with Campaign.Spec.ns = [ 2 ] }
  in
  match Campaign.Spec.tasks spec with
  | Error e -> Printf.printf "spec error: %s\n" e
  | Ok tasks ->
    let dir = Filename.temp_file "bench_campaign" "" in
    Sys.remove dir;
    let run label =
      let store = Campaign.Store.open_ ~dir () in
      let o = Campaign.Executor.run ~store tasks in
      Printf.printf "%-5s %3d task(s): %3d executed, %3d cached, %.3f s\n" label
        o.Campaign.Executor.total o.Campaign.Executor.executed
        o.Campaign.Executor.cached o.Campaign.Executor.elapsed;
      o
    in
    let cold = run "cold" in
    let warm = run "warm" in
    let report = Campaign.Report.make warm.Campaign.Executor.records in
    let unexpected = List.length (Campaign.Report.unexpected report) in
    Printf.printf "unexpected (non-verified) verdicts: %d\n" unexpected;
    (* the shared-store (claim-per-task) path: same spec into a fresh dir,
       then warm again — measures the lease protocol's overhead relative to
       the plain executor and re-checks the dedupe invariant *)
    let shared_dir = Filename.temp_file "bench_campaign_shared" "" in
    Sys.remove shared_dir;
    let run_shared label =
      let store = Campaign.Store.open_ ~dir:shared_dir () in
      let o = Campaign.Executor.run_shared ~store tasks in
      Printf.printf "%-11s %3d task(s): %3d executed, %3d cached, %.3f s\n" label
        o.Campaign.Executor.total o.Campaign.Executor.executed
        o.Campaign.Executor.cached o.Campaign.Executor.elapsed;
      o
    in
    let shared_cold = run_shared "shared-cold" in
    let shared_warm = run_shared "shared-warm" in
    Printf.printf "claim-protocol overhead vs plain cold run: %+.3f s\n"
      (shared_cold.Campaign.Executor.elapsed -. cold.Campaign.Executor.elapsed);
    write_json "BENCH_campaign.json"
      (Campaign.Json.Obj
         [
           ("smoke", Campaign.Json.Bool smoke);
           ("tasks", Campaign.Json.Int cold.Campaign.Executor.total);
           ("cold_executed", Campaign.Json.Int cold.Campaign.Executor.executed);
           ("cold_elapsed", Campaign.Json.Float cold.Campaign.Executor.elapsed);
           ("warm_executed", Campaign.Json.Int warm.Campaign.Executor.executed);
           ("warm_cached", Campaign.Json.Int warm.Campaign.Executor.cached);
           ("warm_elapsed", Campaign.Json.Float warm.Campaign.Executor.elapsed);
           ( "shared_cold_executed",
             Campaign.Json.Int shared_cold.Campaign.Executor.executed );
           ( "shared_cold_elapsed",
             Campaign.Json.Float shared_cold.Campaign.Executor.elapsed );
           ( "shared_warm_executed",
             Campaign.Json.Int shared_warm.Campaign.Executor.executed );
           ( "shared_warm_cached",
             Campaign.Json.Int shared_warm.Campaign.Executor.cached );
           ( "shared_warm_elapsed",
             Campaign.Json.Float shared_warm.Campaign.Executor.elapsed );
           ("unexpected", Campaign.Json.Int unexpected);
           ( "records",
             Campaign.Json.List
               (List.map Campaign.Record.to_json warm.Campaign.Executor.records) );
         ])

(* -------------------------------------------------------------- LINT -- *)

(* The static-analysis passes: per-row symmetry certification timing (and the
   effect of the run cache), certificate warm-up through the campaign store's
   certs/ side-table (cold compute+persist vs preload from disk), then the
   full-registry lint with its findings summary — the same pass CI runs via
   `space_hierarchy lint --strict`.  Results go to BENCH_lint.json. *)
let lint_bench ~smoke () =
  section "LINT: protocol & iset linter (certify / contracts / space claims)";
  let ns = if smoke then [ 2 ] else [ 2; 3 ] in
  let rows = Hierarchy.rows () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, Unix.gettimeofday () -. t0)
  in
  Printf.printf "%-22s %-44s %10s %10s\n" "row" "symmetry verdict (n=2)" "cold ms"
    "cached ms";
  let certify_rows =
    List.map
      (fun (row : Hierarchy.row) ->
        Analysis.Symmetry.reset_run_cache ();
        let inputs = [| 0; 0 |] in
        let verdict, cold =
          time (fun () -> Analysis.Symmetry.certify_for_run row.protocol ~inputs)
        in
        let _, cached =
          time (fun () -> Analysis.Symmetry.certify_for_run row.protocol ~inputs)
        in
        let verdict_str = Format.asprintf "%a" Analysis.Symmetry.pp_verdict verdict in
        Printf.printf "%-22s %-44s %10.2f %10.3f\n" row.id verdict_str
          (cold *. 1e3) (cached *. 1e3);
        Campaign.Json.Obj
          [
            ("row", Campaign.Json.String row.id);
            ("verdict", Campaign.Json.String verdict_str);
            ("cold_s", Campaign.Json.Float cold);
            ("cached_s", Campaign.Json.Float cached);
          ])
      rows
  in
  (* Certificate store: cold precertification computes every verdict and
     persists it under certs/; a second pass with an emptied in-process
     cache must read every verdict back instead of recomputing — the cost a
     fleet member pays when another member certified first. *)
  let store_dir = Filename.temp_file "bench_lint_store" "" in
  Sys.remove store_dir;
  let store = Campaign.Store.open_ ~dir:store_dir () in
  let sym = { Explore.commute = false; symmetric = true } in
  (* n = 3: binary-only rows then have an equal-input pid pair, so their
     certification is the real lockstep/CFG work, not the vacuous
     all-distinct-inputs certificate *)
  let sym_tasks =
    List.map
      (fun row -> Campaign.Task.check ~engine:`Memo ~reduce:sym ~depth:4 row ~n:3)
      rows
  in
  Analysis.Symmetry.reset_run_cache ();
  let (), store_cold =
    time (fun () -> Campaign.Executor.precertify ~store sym_tasks)
  in
  Analysis.Symmetry.reset_run_cache ();
  let computed_before = Atomic.get Analysis.Symmetry.computed_count in
  let (), store_preload =
    time (fun () -> Campaign.Executor.precertify ~store sym_tasks)
  in
  let recomputed = Atomic.get Analysis.Symmetry.computed_count - computed_before in
  Printf.printf
    "\ncertificate store (%d rows): cold certify+persist %.2f ms, preload %.2f ms \
     (%d recomputed)\n"
    (List.length rows) (store_cold *. 1e3) (store_preload *. 1e3) recomputed;
  let t0 = Unix.gettimeofday () in
  let findings = Analysis.Lint.run ~ns () in
  let lint_dt = Unix.gettimeofday () -. t0 in
  Printf.printf
    "\nfull registry lint (ns = %s): %d findings, %d errors, %d warnings in %.2f s\n"
    (String.concat "," (List.map string_of_int ns))
    (List.length findings)
    (Analysis.Report.errors findings)
    (Analysis.Report.warnings findings)
    lint_dt;
  let t0 = Unix.gettimeofday () in
  let self = Analysis.Lint.selftest () in
  let self_dt = Unix.gettimeofday () -. t0 in
  Printf.printf "mutant selftest: %d findings, %d escapes in %.2f s\n"
    (List.length self)
    (Analysis.Report.errors self)
    self_dt;
  write_json "BENCH_lint.json"
    (Campaign.Json.Obj
       [
         ("certify", Campaign.Json.List certify_rows);
         ("store_rows", Campaign.Json.Int (List.length rows));
         ("store_cold_s", Campaign.Json.Float store_cold);
         ("store_preload_s", Campaign.Json.Float store_preload);
         ("store_recomputed", Campaign.Json.Int recomputed);
         ("lint_findings", Campaign.Json.Int (List.length findings));
         ("lint_errors", Campaign.Json.Int (Analysis.Report.errors findings));
         ("lint_warnings", Campaign.Json.Int (Analysis.Report.warnings findings));
         ("lint_elapsed_s", Campaign.Json.Float lint_dt);
         ("selftest_findings", Campaign.Json.Int (List.length self));
         ("selftest_escapes", Campaign.Json.Int (Analysis.Report.errors self));
         ("selftest_elapsed_s", Campaign.Json.Float self_dt);
       ])

(* -------------------------------------------------------------- TIME -- *)

let bechamel_suite () =
  section "TIME: bechamel wall-clock (solo decision, n = 8)";
  let open Bechamel in
  let make_test (name, proto, binary) =
    let n = 8 in
    let inputs =
      if binary then Array.init n (fun i -> i land 1) else Array.init n (fun i -> i)
    in
    Test.make ~name
      (Staged.stage (fun () ->
           let report =
             Consensus.Driver.run proto ~inputs ~sched:(Model.Sched.solo 0)
           in
           assert (List.mem_assoc 0 report.decisions)))
  in
  let tests =
    List.map make_test
      [
        ("cas", Consensus.Cas_protocol.protocol, false);
        ("faa2+tas", Consensus.Intro_protocols.faa2_tas, true);
        ("dec+mul", Consensus.Intro_protocols.decmul, true);
        ("arith-add", Consensus.Arith_protocols.add, false);
        ("arith-mul", Consensus.Arith_protocols.mul, false);
        ("arith-set-bit", Consensus.Arith_protocols.set_bit, false);
        ("fetch-and-add", Consensus.Arith_protocols.faa, false);
        ("max-registers", Consensus.Maxreg_protocol.protocol, false);
        ("swap-read", Consensus.Swap_protocol.protocol, false);
        ("rw-registers", Consensus.Rw_protocol.protocol, false);
        ("buffers-2", Consensus.Buffers_protocol.protocol ~capacity:2, false);
        ("buffers-4", Consensus.Buffers_protocol.protocol ~capacity:4, false);
        ( "increment-logn",
          Consensus.Increment_protocol.protocol ~flavour:Isets.Incr.Increment_only,
          false );
        ("tracks-tas", Consensus.Tracks_protocol.protocol ~flavour:Isets.Bits.Tas_only, false);
        ("gr05-binary", Consensus.Tracks_protocol.binary ~flavour:Isets.Bits.Write1_only, true);
        ("tug-of-war", Consensus.Tugofwar_protocol.protocol, false);
        ("adopt-commit-ladder", Consensus.Adopt_commit_protocol.protocol, false);
        ("earliest-writer", Consensus.Assignment_protocol.earliest_writer, false);
        ("hetero-[3;3;2]", Consensus.Hetero_protocol.protocol ~capacities:[ 3; 3; 2 ], false);
        ("write01-nlogn", Consensus.Nlogn_protocol.protocol ~flavour:Isets.Bits.Write01, false);
      ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
    in
    let raw = Benchmark.all cfg [ instance ] test in
    Analyze.all ols instance raw
  in
  let results = benchmark (Test.make_grouped ~name:"solo" ~fmt:"%s %s" tests) in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort compare rows in
  Printf.printf "%-28s %s\n" "protocol" "ns / solo decision (n=8)";
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ est ] -> Printf.printf "%-28s %14.0f\n" name est
      | _ -> Printf.printf "%-28s %14s\n" name "n/a")
    rows

(* ------------------------------------------------------------ driver -- *)

let sections : (string * (smoke:bool -> unit)) list =
  [
    ("T1", fun ~smoke:_ -> table1 ());
    ("T1-LB", fun ~smoke:_ -> table1_lower_bounds ());
    ("F1", fun ~smoke:_ -> figure1 ());
    ("INTRO", fun ~smoke:_ -> intro ());
    ("STEPS", fun ~smoke:_ -> steps_bound ());
    ("BUF", fun ~smoke:_ -> buffer_sweep ());
    ("MULTI", fun ~smoke:_ -> multi_assignment ());
    ("HETERO", fun ~smoke:_ -> hetero ());
    ("ASSIGN", fun ~smoke:_ -> assignment ());
    ("SYNTH", fun ~smoke:_ -> synth ());
    ("STEPC", fun ~smoke:_ -> step_complexity ());
    ("CONJ", fun ~smoke:_ -> conjecture_curve ());
    ("RAND", fun ~smoke:_ -> randomized ());
    ( "ABL",
      fun ~smoke:_ ->
        ablation_threshold ();
        ablation_stability () );
    ("MC", fun ~smoke -> mc ~smoke ());
    ("OBS", fun ~smoke -> obs ~smoke ());
    ("RED", fun ~smoke -> red ~smoke ());
    ("WIT", fun ~smoke -> witnesses ~smoke ());
    ("CRASH", fun ~smoke -> crash_bench ~smoke ());
    ("CAMP", fun ~smoke -> campaign_bench ~smoke ());
    ("LINT", fun ~smoke -> lint_bench ~smoke ());
    ("TIME", fun ~smoke:_ -> bechamel_suite ());
  ]

(* Usage: main.exe [--smoke] [SECTION ...] — no sections means all of them. *)
let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let smoke = List.mem "--smoke" args in
  let wanted = List.filter (fun a -> a <> "--smoke") args in
  let run_one name =
    match List.assoc_opt name sections with
    | Some f -> f ~smoke
    | None ->
      Printf.eprintf "unknown section %s (known: %s)\n" name
        (String.concat " " (List.map fst sections));
      exit 2
  in
  (match wanted with
   | [] -> List.iter (fun (_, f) -> f ~smoke) sections
   | names -> List.iter run_one names);
  print_newline ()
